//! Deterministic intra-run sharding: one `FleetSim` run split across
//! worker threads, bit-identical to the serial run.
//!
//! The conservative-synchronization insight (classic PDES, cf. the survey
//! papers in PAPERS.md) is that the fleet's arms are *causally
//! independent* between weekly evaluations: a device failure in one arm
//! never schedules an event in another arm, and the only fleet-wide
//! coupling — the weekly uptime evaluation and the yearly upkeep tick —
//! is a broadcast, not an interaction. That makes the arm the natural
//! shard granule (device-level splits are impossible without perturbing
//! the common-random-numbers discipline: `weekly_eval` consumes exactly
//! one normal draw per alive device, in device order, from the *arm's*
//! stream).
//!
//! The protocol, in full (DESIGN.md §11):
//!
//! 1. **Plan** ([`ShardPlan`]): a stable, seed-independent partition of
//!    global arm ids into `k` groups, balanced by per-arm device count
//!    (LPT greedy). Pure function of `(weights, k)` — no RNG, no clock.
//! 2. **Split** (`FleetSim::split_for_shards`): build the serial engine,
//!    then move each arm — with its private rng, diary and span log —
//!    into its owner shard, and route the primed event queue by owner in
//!    serial (time, FIFO) order. Tick-chain events are replicated into
//!    every shard.
//! 3. **Run**: each shard advances its own `Engine` on a scoped worker
//!    thread to the shared horizon. The weekly tick is the epoch barrier
//!    of the literature, but because no cross-shard messages exist the
//!    shards never have to wait for each other — each replays the
//!    broadcast locally.
//! 4. **Merge** (`FleetSim::merge_shards` → `FleetSim::finalize`): arms
//!    are regrouped in ascending global-id order and the *same* finalize
//!    path as a serial run performs the canonical diary/span merge and
//!    ledger collection; profiles fold with the replayed tick chains
//!    deduplicated so `events_processed` matches serial exactly.
//!
//! Bit-identity is structural, not coincidental: every number that feeds
//! the run digest is produced per-arm by per-arm state (rng, ledger,
//! diary, spans, deferred metric settlements), and both execution modes
//! funnel through one finalize path whose output is a pure function of
//! those per-arm streams. The differential harness
//! (`tests/shard_differential.rs`) and the golden pins keep it that way.

use core::fmt;

use simcore::engine::{Ctx, Engine, FaultHook};
use simcore::time::SimTime;

use crate::sim::{Ev, FleetConfig, FleetReport, FleetSim};

/// Ways a sharded run request can be invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// Zero shards were requested; at least one is required.
    ZeroShards,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "cannot run a fleet across zero shards"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A stable, seed-independent partition of global arm ids into shards.
///
/// Built by longest-processing-time greedy: arms are taken in descending
/// weight order (ties broken by ascending arm id) and each is assigned to
/// the currently least-loaded shard (ties broken by lowest shard index).
/// The plan is a pure function of the weight list and the shard count —
/// it never consults the seed, the clock, or an RNG — so every replicate
/// of an experiment shards identically.
///
/// Invariants (property-tested in `tests/properties.rs`):
///
/// * every arm appears in exactly one group;
/// * group membership is ascending by arm id within each group;
/// * empty groups only ever appear as a suffix (so filtering them off
///   preserves the shard indices of the non-empty ones);
/// * with more shards than arms, each arm gets its own shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// `groups[si]` = ascending global arm ids owned by shard `si`.
    groups: Vec<Vec<usize>>,
    /// `owner[ai]` = shard index owning global arm `ai`.
    owner: Vec<usize>,
}

impl ShardPlan {
    /// Balances `weights.len()` arms (weight = device count; zero-weight
    /// arms are costed as 1 so they still occupy a slot) across `shards`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::ZeroShards`] when `shards == 0`.
    pub fn balance(weights: &[u64], shards: usize) -> Result<ShardPlan, ShardError> {
        if shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].max(1).cmp(&weights[a].max(1)).then(a.cmp(&b)));
        let mut loads = vec![0u64; shards];
        let mut groups: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for &ai in &order {
            let mut best = 0;
            for (si, &load) in loads.iter().enumerate().skip(1) {
                if load < loads[best] {
                    best = si;
                }
            }
            loads[best] += weights[ai].max(1);
            groups[best].push(ai);
        }
        for group in &mut groups {
            group.sort_unstable();
        }
        let mut owner = vec![0usize; weights.len()];
        for (si, group) in groups.iter().enumerate() {
            for &ai in group {
                owner[ai] = si;
            }
        }
        Ok(ShardPlan { groups, owner })
    }

    /// The plan for a fleet configuration: arms weighted by device count.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::ZeroShards`] when `shards == 0`.
    pub fn for_fleet(cfg: &FleetConfig, shards: usize) -> Result<ShardPlan, ShardError> {
        let weights: Vec<u64> = cfg.arms.iter().map(|a| a.devices as u64).collect();
        Self::balance(&weights, shards)
    }

    /// The shard owning global arm `ai`, or `None` for an out-of-range id
    /// (chaos plans can target arms a configuration doesn't have; the
    /// runner routes those to shard 0, whose injector skips them exactly
    /// like the serial injector does).
    pub fn owner_of(&self, ai: usize) -> Option<usize> {
        self.owner.get(ai).copied()
    }

    /// The groups, `groups()[si]` being the ascending global arm ids of
    /// shard `si`. Trailing groups may be empty; non-empty groups form a
    /// prefix.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of shard slots (including empty trailing ones).
    pub fn shards(&self) -> usize {
        self.groups.len()
    }
}

/// The no-op hook behind the plain [`run_sharded`] entry point.
struct NoFaults;

impl FaultHook<FleetSim> for NoFaults {
    fn next_fault_at(&self) -> Option<SimTime> {
        None
    }
    fn fire(&mut self, _now: SimTime, _world: &mut FleetSim, _ctx: &mut Ctx<'_, Ev>) {}
}

/// Fleets smaller than this many devices run serially even when shards
/// are requested: below it the per-thread spawn/merge overhead exceeds
/// the parallel win (the throughput bench measured a 0.979× *slowdown*
/// at 10k devices and a 1.34× speedup at 100k —
/// `BENCH_sim_throughput.json`). The `*_forced` entry points bypass the
/// threshold; the differential and golden suites use them so small test
/// fleets still exercise the real multi-shard machinery.
pub const SERIAL_FALLBACK_DEVICES: u64 = 50_000;

/// Total configured device count — the work measure the serial-fallback
/// threshold compares against [`SERIAL_FALLBACK_DEVICES`].
fn fleet_devices(cfg: &FleetConfig) -> u64 {
    cfg.arms.iter().map(|a| a.devices as u64).sum()
}

/// The plan a run request resolves to: the requested shard count, or —
/// when the fleet is below the serial-fallback threshold and `force` is
/// off — a one-shard plan. Collapsing the *plan* (not just the thread
/// count) matters for hooked runs: the serial fallback builds shard 0's
/// hook, and under a one-shard plan `owner_of` routes every arm's faults
/// to shard 0, so no fault is silently dropped.
fn effective_plan(cfg: &FleetConfig, shards: usize, force: bool) -> Result<ShardPlan, ShardError> {
    if shards == 0 {
        return Err(ShardError::ZeroShards);
    }
    if !force && fleet_devices(cfg) < SERIAL_FALLBACK_DEVICES {
        return ShardPlan::for_fleet(cfg, 1);
    }
    ShardPlan::for_fleet(cfg, shards)
}

/// Runs `cfg` split across `shards` worker threads.
///
/// The returned report is bit-identical — same digest — to
/// [`FleetSim::run`] for every seed and every shard count. `shards`
/// larger than the arm count degrades gracefully (one arm per shard,
/// surplus shards idle); `shards == 1` takes the serial path outright;
/// fleets under [`SERIAL_FALLBACK_DEVICES`] devices also run serially
/// (use [`run_sharded_forced`] to bypass).
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_sharded(cfg: FleetConfig, shards: usize) -> Result<FleetReport, ShardError> {
    run_sharded_hooked(cfg, shards, |_si, _plan| NoFaults)
}

/// [`run_sharded`] without the small-fleet serial fallback: always
/// splits into the requested shard count. Test harnesses use this so
/// small fleets still drive the real multi-shard machinery; production
/// callers should prefer [`run_sharded`].
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_sharded_forced(cfg: FleetConfig, shards: usize) -> Result<FleetReport, ShardError> {
    run_sharded_hooked_forced(cfg, shards, |_si, _plan| NoFaults)
}

/// [`run_sharded`] with a per-shard [`FaultHook`] — the chaos crate's
/// entry point. `make_hook(si, plan)` builds shard `si`'s hook; hooks for
/// the serial fallback (one or zero non-empty shards) are built as shard
/// 0's. Hooks fire before tied world events *within their shard*, which
/// is the same per-arm interleaving the serial engine produces.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
///
/// # Panics
///
/// Re-raises (via [`std::panic::resume_unwind`]) any panic raised on a
/// shard worker thread, after every worker has been joined.
pub fn run_sharded_hooked<H, F>(
    cfg: FleetConfig,
    shards: usize,
    make_hook: F,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    run_sharded_hooked_inner(cfg, shards, make_hook, false)
}

/// [`run_sharded_hooked`] without the small-fleet serial fallback.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_sharded_hooked_forced<H, F>(
    cfg: FleetConfig,
    shards: usize,
    make_hook: F,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    run_sharded_hooked_inner(cfg, shards, make_hook, true)
}

fn run_sharded_hooked_inner<H, F>(
    cfg: FleetConfig,
    shards: usize,
    make_hook: F,
    force: bool,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    let plan = effective_plan(&cfg, shards, force)?;
    let horizon = SimTime::ZERO + cfg.horizon;
    // Per-arm planning is pure in (seed, arm index, config), so the build
    // itself parallelizes — bit-identical to the serial build. Fan out as
    // wide as the run phase will: the caller asked for `shards` threads.
    let workers = shards.max(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
    let engine = FleetSim::build_parallel_with(cfg, workers);
    drive_sharded(engine, &plan, horizon, make_hook)
}

/// Continues a restored mid-run engine (see [`crate::snapshot`]) to its
/// horizon across `shards` worker threads. The finished report — digest
/// included — is bit-identical to the uninterrupted serial run for every
/// checkpoint instant and shard count; small fleets take the serial
/// fallback as in [`run_sharded`].
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_resumed(engine: Engine<FleetSim>, shards: usize) -> Result<FleetReport, ShardError> {
    run_resumed_hooked(engine, shards, |_si, _plan| NoFaults)
}

/// [`run_resumed`] without the small-fleet serial fallback.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_resumed_forced(
    engine: Engine<FleetSim>,
    shards: usize,
) -> Result<FleetReport, ShardError> {
    run_resumed_hooked_forced(engine, shards, |_si, _plan| NoFaults)
}

/// [`run_resumed`] with a per-shard [`FaultHook`] — the chaos crate's
/// resume entry point. Hook construction follows
/// [`run_sharded_hooked`]'s contract.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_resumed_hooked<H, F>(
    engine: Engine<FleetSim>,
    shards: usize,
    make_hook: F,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    run_resumed_hooked_inner(engine, shards, make_hook, false)
}

/// [`run_resumed_hooked`] without the small-fleet serial fallback.
///
/// # Errors
///
/// Returns [`ShardError::ZeroShards`] when `shards == 0`.
pub fn run_resumed_hooked_forced<H, F>(
    engine: Engine<FleetSim>,
    shards: usize,
    make_hook: F,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    run_resumed_hooked_inner(engine, shards, make_hook, true)
}

fn run_resumed_hooked_inner<H, F>(
    engine: Engine<FleetSim>,
    shards: usize,
    make_hook: F,
    force: bool,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    let plan = effective_plan(&engine.world().cfg, shards, force)?;
    let horizon = SimTime::ZERO + engine.world().cfg.horizon;
    drive_sharded(engine, &plan, horizon, make_hook)
}

/// The one sharded driver behind fresh and resumed runs: split the
/// engine by the plan's non-empty groups, run each shard on a scoped
/// worker thread, merge through the canonical finalize path.
///
/// The engine's profile is captured *before* the split and folded back
/// in at merge ([`FleetSim::merge_shards_onto`]): a fresh engine
/// contributes an empty base, a resumed engine its pre-checkpoint
/// dispatch counts, so `events_processed` matches the uninterrupted
/// serial run either way.
fn drive_sharded<H, F>(
    engine: Engine<FleetSim>,
    plan: &ShardPlan,
    horizon: SimTime,
    make_hook: F,
) -> Result<FleetReport, ShardError>
where
    H: FaultHook<FleetSim> + Send,
    F: Fn(usize, &ShardPlan) -> H + Sync,
{
    let groups: Vec<Vec<usize>> =
        plan.groups().iter().filter(|g| !g.is_empty()).cloned().collect();
    if groups.len() <= 1 {
        // One shard of work (or an arm-less config): the split would be
        // the identity, so run serial under shard 0's hook.
        let mut engine = engine;
        let mut hook = make_hook(0, plan);
        engine.run_until_hooked(horizon, &mut hook);
        return Ok(FleetSim::into_report(engine, horizon));
    }
    let base_profile = engine.profile().clone();
    let engines = FleetSim::split_for_shards(engine, &groups);
    let joined: Vec<std::thread::Result<Engine<FleetSim>>> = std::thread::scope(|scope| {
        let make_hook = &make_hook;
        let handles: Vec<_> = engines
            .into_iter()
            .enumerate()
            .map(|(si, mut engine)| {
                scope.spawn(move || {
                    let mut hook = make_hook(si, plan);
                    engine.run_until_hooked(horizon, &mut hook);
                    engine
                })
            })
            .collect();
        handles.into_iter().map(std::thread::ScopedJoinHandle::join).collect()
    });
    let mut finished = Vec::with_capacity(joined.len());
    for result in joined {
        match result {
            Ok(engine) => finished.push(engine),
            // A worker died: every sibling has been joined above, so
            // re-raising the first payload loses nothing.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    FleetSim::merge_shards_onto(base_profile, finished, horizon).ok_or(ShardError::ZeroShards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_an_error() {
        assert_eq!(ShardPlan::balance(&[1, 2, 3], 0), Err(ShardError::ZeroShards));
        let err = run_sharded(FleetConfig::paper_experiment(1), 0).unwrap_err();
        assert_eq!(err, ShardError::ZeroShards);
        assert!(err.to_string().contains("zero shards"));
    }

    #[test]
    fn every_arm_lands_in_exactly_one_group() {
        let plan = ShardPlan::balance(&[10, 10, 3, 0, 7], 3).unwrap();
        let mut seen = vec![0u32; 5];
        for group in plan.groups() {
            for &ai in group {
                seen[ai] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "memberships {seen:?}");
        for (ai, &n) in seen.iter().enumerate() {
            assert_eq!(n, 1);
            assert_eq!(plan.owner_of(ai), plan.groups().iter().position(|g| g.contains(&ai)));
        }
        assert_eq!(plan.owner_of(5), None);
    }

    #[test]
    fn lpt_balances_heavy_and_light_arms() {
        // One heavy arm, three light: LPT isolates the heavy one.
        let plan = ShardPlan::balance(&[100, 5, 5, 5], 2).unwrap();
        assert_eq!(plan.groups()[0], vec![0]);
        assert_eq!(plan.groups()[1], vec![1, 2, 3]);
    }

    #[test]
    fn more_shards_than_arms_degrades_to_singletons() {
        let plan = ShardPlan::balance(&[4, 4], 8).unwrap();
        assert_eq!(plan.shards(), 8);
        let nonempty: Vec<_> = plan.groups().iter().filter(|g| !g.is_empty()).collect();
        assert_eq!(nonempty.len(), 2, "one arm per shard");
        // Empty groups are a strict suffix.
        let first_empty = plan.groups().iter().position(Vec::is_empty).unwrap();
        assert!(plan.groups()[first_empty..].iter().all(Vec::is_empty));
    }

    #[test]
    fn plan_is_seed_independent() {
        let a = ShardPlan::for_fleet(&FleetConfig::paper_experiment(1), 2).unwrap();
        let b = ShardPlan::for_fleet(&FleetConfig::paper_experiment(999), 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_matches_serial_smoke() {
        let serial = FleetSim::run(FleetConfig::paper_experiment(5));
        // Forced: the 20-device paper fleet is below the fallback
        // threshold, and this smoke test wants the real split machinery.
        let sharded = run_sharded_forced(FleetConfig::paper_experiment(5), 2).unwrap();
        assert_eq!(serial.digest(), sharded.digest());
    }

    #[test]
    fn small_fleet_serial_fallback_digests_identically() {
        // The paper fleet (20 devices) sits far below
        // SERIAL_FALLBACK_DEVICES: the auto path must collapse to serial
        // and still digest exactly like serial and like a forced split.
        let serial = FleetSim::run(FleetConfig::paper_experiment(9));
        let auto = run_sharded(FleetConfig::paper_experiment(9), 4).unwrap();
        let forced = run_sharded_forced(FleetConfig::paper_experiment(9), 4).unwrap();
        assert_eq!(serial.digest(), auto.digest());
        assert_eq!(serial.digest(), forced.digest());
        assert_eq!(serial.events_processed, auto.events_processed);
    }

    #[test]
    fn resumed_sharded_run_matches_uninterrupted() {
        use simcore::time::SimDuration;

        let cfg = || FleetConfig::paper_experiment(33);
        let baseline = FleetSim::run(cfg());
        let mut engine = FleetSim::build(cfg());
        engine.run_until(SimTime::ZERO + SimDuration::from_weeks(80));
        let bytes = crate::snapshot::checkpoint_bytes(
            &mut engine,
            crate::snapshot::ChaosProgress::default(),
        );
        drop(engine);
        let resumed = crate::snapshot::resume_from_bytes(&bytes, cfg()).unwrap();
        let report = run_resumed_forced(resumed.engine, 2).unwrap();
        assert_eq!(report.digest(), baseline.digest());
        assert_eq!(report.events_processed, baseline.events_processed);
    }
}
