//! Simulation time over century-scale horizons.
//!
//! The simulator measures time in whole **seconds** held in a `u64`, which
//! comfortably spans more than 500 billion years — far beyond the 50–100-year
//! horizons this toolkit targets. Sub-second resolution is deliberately not
//! modelled: the phenomena of interest (harvest cycles, failures, weekly
//! uptime checks) evolve over seconds to decades, and radio airtimes that do
//! require millisecond precision are handled analytically inside the `net`
//! crate rather than as discrete events.
//!
//! A simplified civil calendar is provided for readability of reports and for
//! seasonal models: every year has exactly 365 days (no leap years). Seasonal
//! drift from ignoring leap days is irrelevant at the fidelity of the models
//! built on top, and a fixed-length year keeps every conversion exact and
//! branch-free.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Seconds in one minute.
pub const MINUTE: u64 = 60;
/// Seconds in one hour.
pub const HOUR: u64 = 60 * MINUTE;
/// Seconds in one day.
pub const DAY: u64 = 24 * HOUR;
/// Seconds in one week.
pub const WEEK: u64 = 7 * DAY;
/// Seconds in one (365-day) simulation year.
pub const YEAR: u64 = 365 * DAY;

/// An instant on the simulation clock, in whole seconds since the start of
/// the simulation (the "epoch", conventionally the deployment date).
///
/// `SimTime` is ordered, hashable and cheap to copy. Arithmetic with
/// [`SimDuration`] is checked in debug builds via the underlying integer ops.
///
/// # Examples
///
/// ```
/// use simcore::time::{SimTime, SimDuration, YEAR};
///
/// let start = SimTime::ZERO;
/// let mid = start + SimDuration::from_years(25);
/// assert_eq!(mid.as_secs(), 25 * YEAR);
/// assert_eq!(mid.year(), 25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in whole seconds.
///
/// # Examples
///
/// ```
/// use simcore::time::SimDuration;
///
/// let d = SimDuration::from_hours(2) + SimDuration::from_mins(30);
/// assert_eq!(d.as_secs(), 9_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * DAY)
    }

    /// Creates an instant from whole (365-day) years since the epoch.
    pub const fn from_years(years: u64) -> Self {
        SimTime(years * YEAR)
    }

    /// Returns the number of whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional years since the epoch.
    pub fn as_years_f64(self) -> f64 {
        self.0 as f64 / YEAR as f64
    }

    /// Returns the zero-based calendar year containing this instant.
    pub const fn year(self) -> u64 {
        self.0 / YEAR
    }

    /// Returns the zero-based day of the year (0..=364).
    pub const fn day_of_year(self) -> u64 {
        (self.0 % YEAR) / DAY
    }

    /// Returns the zero-based day since the epoch.
    pub const fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Returns the second within the current day (0..DAY).
    pub const fn second_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// Returns the hour within the current day (0..=23).
    pub const fn hour_of_day(self) -> u64 {
        self.second_of_day() / HOUR
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Returns `self + d`, saturating at [`SimTime::MAX`].
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns `self + d`, or `None` on overflow.
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MINUTE)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * HOUR)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * DAY)
    }

    /// Creates a duration from whole weeks.
    pub const fn from_weeks(weeks: u64) -> Self {
        SimDuration(weeks * WEEK)
    }

    /// Creates a duration from whole (365-day) years.
    pub const fn from_years(years: u64) -> Self {
        SimDuration(years * YEAR)
    }

    /// Creates a duration from fractional years, rounding to whole seconds.
    ///
    /// Negative and non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimDuration::MAX`].
    pub fn from_years_f64(years: f64) -> Self {
        Self::from_secs_f64(years * YEAR as f64)
    }

    /// Creates a duration from fractional seconds, rounding to whole seconds.
    ///
    /// Negative and non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            if secs.is_infinite() && secs > 0.0 {
                return SimDuration::MAX;
            }
            return SimDuration::ZERO;
        }
        if secs >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        SimDuration(secs.round() as u64)
    }

    /// Returns the duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Returns the duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// Returns the duration in fractional years.
    pub fn as_years_f64(self) -> f64 {
        self.0 as f64 / YEAR as f64
    }

    /// Returns `self * k`, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Formats as `yYYY dDDD HH:MM:SS` — year, day-of-year, time-of-day.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sod = self.second_of_day();
        write!(
            f,
            "y{:03} d{:03} {:02}:{:02}:{:02}",
            self.year(),
            self.day_of_year(),
            sod / HOUR,
            (sod % HOUR) / MINUTE,
            sod % MINUTE
        )
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    /// Formats with the largest natural unit: years, days, hours, minutes or
    /// seconds, with one decimal where it aids reading.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= YEAR {
            write!(f, "{:.1}y", self.as_years_f64())
        } else if s >= DAY {
            write!(f, "{:.1}d", self.as_days_f64())
        } else if s >= HOUR {
            write!(f, "{:.1}h", self.as_hours_f64())
        } else if s >= MINUTE {
            write!(f, "{:.1}m", s as f64 / MINUTE as f64)
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compose() {
        assert_eq!(HOUR, 3_600);
        assert_eq!(DAY, 86_400);
        assert_eq!(WEEK, 604_800);
        assert_eq!(YEAR, 31_536_000);
    }

    #[test]
    fn calendar_decomposition() {
        let t = SimTime::from_years(3) + SimDuration::from_days(100) + SimDuration::from_hours(5);
        assert_eq!(t.year(), 3);
        assert_eq!(t.day_of_year(), 100);
        assert_eq!(t.hour_of_day(), 5);
        assert_eq!(t.day(), 3 * 365 + 100);
    }

    #[test]
    fn century_horizon_fits() {
        let t = SimTime::from_years(100);
        assert_eq!(t.year(), 100);
        assert!(t.as_secs() < u64::MAX / 1_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_secs(1_000);
        let d = SimDuration::from_secs(234);
        assert_eq!((a + d) - d, a);
        assert_eq!((a + d).since(a), d);
        assert_eq!((a + d) - a, d);
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(SimTime::ZERO.checked_add(SimDuration::MAX), Some(SimTime::MAX));
        assert_eq!(SimTime::from_secs(1).checked_add(SimDuration::MAX), None);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.6), SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn fractional_year_conversions() {
        let d = SimDuration::from_years_f64(0.5);
        assert_eq!(d.as_secs(), YEAR / 2);
        assert!((d.as_years_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
        assert_eq!(SimDuration::from_mins(90).to_string(), "1.5h");
        assert_eq!(SimDuration::from_years(50).to_string(), "50.0y");
        let t = SimTime::from_years(2) + SimDuration::from_hours(1);
        assert_eq!(t.to_string(), "y002 d000 01:00:00");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_days(1) < SimDuration::from_weeks(1));
    }
}
