//! Time-series recording for figures.
//!
//! A [`Series`] is an append-only `(SimTime, f64)` sequence with helpers for
//! CSV export and down-sampling — the raw material for every figure in
//! EXPERIMENTS.md. A [`SeriesSet`] groups named series that share an x-axis
//! (e.g. one line per policy).

use std::fmt::Write as _;

use crate::time::SimTime;

/// An append-only named time series.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the last recorded point.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| t >= last),
            "series must be appended in time order"
        );
        self.points.push((t, value));
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at time `t` under zero-order hold (last value at or before `t`).
    ///
    /// Returns `None` if `t` precedes the first point.
    pub fn sample_hold(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Down-samples to at most `max_points` by keeping every k-th point plus
    /// the final point. Returns a new series; the original is untouched.
    pub fn decimate(&self, max_points: usize) -> Series {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut out = Series::new(self.name.clone());
        for (i, &(t, v)) in self.points.iter().enumerate() {
            if i % stride == 0 {
                out.points.push((t, v));
            }
        }
        if let Some(&last) = self.points.last() {
            if out.points.last() != Some(&last) {
                out.points.push(last);
            }
        }
        out
    }
}

/// A group of series sharing an x-axis, exportable as CSV.
#[derive(Clone, Debug, Default)]
pub struct SeriesSet {
    series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SeriesSet::default()
    }

    /// Adds a series to the set.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// All member series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks a series up by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Renders the set as CSV with a `time_years` column and one column per
    /// series, sampling each series with zero-order hold on the union of all
    /// timestamps. Missing leading values render empty.
    pub fn to_csv(&self) -> String {
        let mut times: Vec<SimTime> = self
            .series
            .iter()
            .flat_map(|s| s.points().iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();

        let mut out = String::new();
        out.push_str("time_years");
        for s in &self.series {
            // Commas inside names would corrupt the CSV; replace them.
            let clean = s.name().replace(',', ";");
            let _ = write!(out, ",{clean}");
        }
        out.push('\n');
        for &t in &times {
            let _ = write!(out, "{:.6}", t.as_years_f64());
            for s in &self.series {
                match s.sample_hold(t) {
                    Some(v) => {
                        let _ = write!(out, ",{v:.6}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime, YEAR};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_read() {
        let mut s = Series::new("alive");
        assert!(s.is_empty());
        s.push(t(0), 1.0);
        s.push(t(10), 0.5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_value(), Some(0.5));
        assert_eq!(s.name(), "alive");
    }

    #[test]
    fn sample_hold_semantics() {
        let mut s = Series::new("x");
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        assert_eq!(s.sample_hold(t(5)), None);
        assert_eq!(s.sample_hold(t(10)), Some(1.0));
        assert_eq!(s.sample_hold(t(15)), Some(1.0));
        assert_eq!(s.sample_hold(t(20)), Some(2.0));
        assert_eq!(s.sample_hold(t(99)), Some(2.0));
    }

    #[test]
    fn decimate_keeps_endpoints() {
        let mut s = Series::new("big");
        for i in 0..1000 {
            s.push(t(i), i as f64);
        }
        let d = s.decimate(10);
        assert!(d.len() <= 11, "got {}", d.len());
        assert_eq!(d.points().first(), Some(&(t(0), 0.0)));
        assert_eq!(d.points().last(), Some(&(t(999), 999.0)));
    }

    #[test]
    fn decimate_small_is_identity() {
        let mut s = Series::new("small");
        s.push(t(1), 1.0);
        let d = s.decimate(10);
        assert_eq!(d.points(), s.points());
    }

    #[test]
    fn csv_export() {
        let mut a = Series::new("fiber");
        a.push(SimTime::from_secs(0), 1.0);
        a.push(SimTime::from_secs(YEAR), 2.0);
        let mut b = Series::new("cellular,lte");
        b.push(SimTime::from_secs(YEAR), 5.0);
        let mut set = SeriesSet::new();
        set.add(a);
        set.add(b);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_years,fiber,cellular;lte");
        assert!(lines[1].starts_with("0.000000,1.000000,"));
        assert!(lines[2].starts_with("1.000000,2.000000,5.000000"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn set_lookup() {
        let mut set = SeriesSet::new();
        set.add(Series::new("a"));
        assert!(set.get("a").is_some());
        assert!(set.get("b").is_none());
        assert_eq!(set.series().len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics_in_debug() {
        let mut s = Series::new("x");
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
        let _ = SimDuration::ZERO;
    }
}
