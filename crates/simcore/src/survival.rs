//! Survival analysis: the Kaplan–Meier product-limit estimator.
//!
//! Century-scale runs are right-censored by construction — the simulation
//! horizon (or the structure's demolition) ends observation before many
//! devices have failed. Kaplan–Meier is the standard nonparametric estimator
//! of the survival function under right censoring and is what EXPERIMENTS.md
//! plots for device cohorts.

/// One subject's observation: time on study and whether the event (failure)
/// was observed or the subject was censored at that time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// Time on study (same unit as the caller uses throughout).
    pub time: f64,
    /// True if the failure occurred at `time`; false if censored there.
    pub event: bool,
}

impl Observation {
    /// An observed failure at `time`.
    pub fn failed(time: f64) -> Self {
        Observation { time, event: true }
    }

    /// A right-censored observation at `time` (still alive when last seen).
    pub fn censored(time: f64) -> Self {
        Observation { time, event: false }
    }
}

/// A step of the estimated survival curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurvivalPoint {
    /// Event time at which the curve steps down.
    pub time: f64,
    /// Estimated S(t) just after this time.
    pub survival: f64,
    /// Number at risk just before this time.
    pub at_risk: u64,
    /// Number of events (failures) at this time.
    pub events: u64,
}

/// A fitted Kaplan–Meier survival curve.
///
/// # Examples
///
/// ```
/// use simcore::survival::{KaplanMeier, Observation};
///
/// let obs = vec![
///     Observation::failed(2.0),
///     Observation::failed(3.0),
///     Observation::censored(4.0),
///     Observation::failed(5.0),
///     Observation::censored(6.0),
/// ];
/// let km = KaplanMeier::fit(&obs);
/// // S(2) = 4/5, S(3) = 4/5 * 3/4 = 3/5, S(5) = 3/5 * 1/2 = 3/10.
/// assert!((km.survival_at(2.5) - 0.8).abs() < 1e-12);
/// assert!((km.survival_at(4.5) - 0.6).abs() < 1e-12);
/// assert!((km.survival_at(5.5) - 0.3).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct KaplanMeier {
    points: Vec<SurvivalPoint>,
    n: u64,
}

impl KaplanMeier {
    /// Fits the product-limit estimator to a set of observations.
    ///
    /// Non-finite or negative times are ignored. Ties between failures and
    /// censorings at the same time follow the standard convention: failures
    /// are processed first (censored subjects at time t are still at risk
    /// for events at t).
    pub fn fit(observations: &[Observation]) -> Self {
        let mut obs: Vec<Observation> = observations
            .iter()
            .copied()
            .filter(|o| o.time.is_finite() && o.time >= 0.0)
            .collect();
        obs.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                // Failures before censorings at equal time.
                .then_with(|| b.event.cmp(&a.event))
        });
        let n = obs.len() as u64;
        let mut points = Vec::new();
        let mut at_risk = n;
        let mut survival = 1.0;
        let mut i = 0;
        while i < obs.len() {
            let t = obs[i].time;
            let mut deaths = 0u64;
            let mut removed = 0u64;
            while i < obs.len() && obs[i].time == t {
                if obs[i].event {
                    deaths += 1;
                }
                removed += 1;
                i += 1;
            }
            if deaths > 0 {
                let risk_before = at_risk;
                survival *= 1.0 - deaths as f64 / risk_before as f64;
                points.push(SurvivalPoint {
                    time: t,
                    survival,
                    at_risk: risk_before,
                    events: deaths,
                });
            }
            at_risk -= removed;
        }
        KaplanMeier { points, n }
    }

    /// Estimated S(t): probability of surviving beyond time `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        let mut s = 1.0;
        for p in &self.points {
            if p.time <= t {
                s = p.survival;
            } else {
                break;
            }
        }
        s
    }

    /// Median survival time: the earliest event time with S(t) ≤ 0.5.
    ///
    /// Returns `None` if the curve never falls to 0.5 (heavy censoring).
    pub fn median(&self) -> Option<f64> {
        self.points.iter().find(|p| p.survival <= 0.5).map(|p| p.time)
    }

    /// The step points of the fitted curve.
    pub fn points(&self) -> &[SurvivalPoint] {
        &self.points
    }

    /// Number of (valid) observations fitted.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Greenwood's formula: the variance of Ŝ(t).
    pub fn greenwood_variance_at(&self, t: f64) -> f64 {
        let mut sum = 0.0;
        let mut s = 1.0;
        for p in &self.points {
            if p.time > t {
                break;
            }
            let d = p.events as f64;
            let r = p.at_risk as f64;
            if r > d {
                sum += d / (r * (r - d));
            } else {
                // Curve hit zero; variance of a degenerate estimate is 0.
                sum = 0.0;
            }
            s = p.survival;
        }
        s * s * sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_censoring_matches_empirical() {
        // Failures at 1, 2, 3, 4: S steps 3/4, 2/4, 1/4, 0.
        let obs: Vec<Observation> = (1..=4).map(|t| Observation::failed(t as f64)).collect();
        let km = KaplanMeier::fit(&obs);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(4.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median(), Some(2.0));
        assert_eq!(km.n(), 4);
    }

    #[test]
    fn all_censored_is_flat_one() {
        let obs: Vec<Observation> = (1..=5).map(|t| Observation::censored(t as f64)).collect();
        let km = KaplanMeier::fit(&obs);
        assert_eq!(km.points().len(), 0);
        assert_eq!(km.survival_at(100.0), 1.0);
        assert_eq!(km.median(), None);
    }

    #[test]
    fn textbook_example_with_censoring() {
        // Classic example: failures at 6,6,6 censored 6; failures 7, 10;
        // censored 9, 10, 11.
        let obs = vec![
            Observation::failed(6.0),
            Observation::failed(6.0),
            Observation::failed(6.0),
            Observation::censored(6.0),
            Observation::failed(7.0),
            Observation::censored(9.0),
            Observation::failed(10.0),
            Observation::censored(10.0),
            Observation::censored(11.0),
        ];
        let km = KaplanMeier::fit(&obs);
        // At t=6: 9 at risk, 3 events -> S = 6/9 = 2/3.
        assert!((km.survival_at(6.0) - 2.0 / 3.0).abs() < 1e-12);
        // At t=7: 5 at risk (9 - 3 failed - 1 censored), 1 event -> 2/3 * 4/5.
        assert!((km.survival_at(7.0) - 2.0 / 3.0 * 4.0 / 5.0).abs() < 1e-12);
        // At t=10: 3 at risk, 1 event -> * 2/3.
        let expect = 2.0 / 3.0 * 4.0 / 5.0 * 2.0 / 3.0;
        assert!((km.survival_at(10.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonincreasing() {
        let obs = vec![
            Observation::failed(3.0),
            Observation::censored(1.0),
            Observation::failed(8.0),
            Observation::failed(2.0),
            Observation::censored(9.0),
            Observation::failed(5.0),
        ];
        let km = KaplanMeier::fit(&obs);
        let mut last = 1.0;
        for p in km.points() {
            assert!(p.survival <= last + 1e-15);
            last = p.survival;
        }
    }

    #[test]
    fn ignores_invalid_times() {
        let obs = vec![
            Observation::failed(f64::NAN),
            Observation::failed(-1.0),
            Observation::failed(2.0),
        ];
        let km = KaplanMeier::fit(&obs);
        assert_eq!(km.n(), 1);
        assert!((km.survival_at(2.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn greenwood_variance_positive_before_zero() {
        let obs = vec![
            Observation::failed(1.0),
            Observation::censored(2.0),
            Observation::failed(3.0),
            Observation::censored(4.0),
        ];
        let km = KaplanMeier::fit(&obs);
        assert!(km.greenwood_variance_at(1.5) > 0.0);
    }

    #[test]
    fn empty_input() {
        let km = KaplanMeier::fit(&[]);
        assert_eq!(km.n(), 0);
        assert_eq!(km.survival_at(1.0), 1.0);
        assert_eq!(km.median(), None);
    }
}
