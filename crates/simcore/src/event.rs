//! Time-ordered event queue with stable FIFO tie-breaking and cancellation.
//!
//! The queue is the heart of the discrete-event engine. Two properties are
//! load-bearing for reproducibility:
//!
//! 1. **Deterministic ordering** — events at equal timestamps pop in the
//!    order they were scheduled (FIFO), enforced with a monotonically
//!    increasing sequence number, so iteration order never depends on heap
//!    internals.
//! 2. **O(log n) cancellation** — cancelled events are tombstoned and
//!    skipped on pop, which keeps cancellation cheap for the common pattern
//!    of "schedule a failure, then supersede it after maintenance".

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

// `BinaryHeap` is a max-heap; invert the ordering to pop earliest first,
// breaking ties by ascending sequence number (FIFO).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A priority queue of `(SimTime, payload)` events.
///
/// # Examples
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "late");
/// q.schedule(SimTime::from_secs(5), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (5, "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids scheduled but not yet fired or cancelled.
    pending: HashSet<EventId>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`, returning a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry { at, seq, id, payload });
        self.pending.insert(id);
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was pending (it will now never fire);
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id)
    }

    /// Removes and returns the earliest live event, skipping tombstones left
    /// by cancellation.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.id) {
                return Some((entry.at, entry.payload));
            }
        }
        None
    }

    /// Returns the timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones off the top so the peeked entry is live.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.id) {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_prevents_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let _b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(5), 2);
        q.schedule(t(7), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        q.schedule(t(6), 4);
        assert_eq!(q.pop(), Some((t(6), 4)));
        assert_eq!(q.pop(), Some((t(7), 3)));
    }
}
