//! Time-ordered event queue: a hierarchical timing wheel with stable FIFO
//! tie-breaking and O(1) cancellation.
//!
//! The queue is the heart of the discrete-event engine. Two properties are
//! load-bearing for reproducibility:
//!
//! 1. **Deterministic ordering** — events at equal timestamps pop in the
//!    order they were scheduled (FIFO), enforced with a monotonically
//!    increasing sequence number, so iteration order never depends on
//!    container internals.
//! 2. **O(1) cancellation** — cancelling unlinks the entry from its bucket
//!    immediately. Nothing is tombstoned in the wheel, so pop cost stays
//!    flat even after mass cancellation ("schedule a failure, then
//!    supersede it after maintenance" at fleet scale).
//!
//! # Layout
//!
//! Entries live in a slab (`Vec<Slot<E>>` plus an intrusive free list);
//! handles are generation-stamped `{index, generation}` pairs so stale ids
//! can never cancel a recycled slot. Pending events hang off a hashed
//! hierarchical timing wheel: [`LEVELS`] levels of [`SLOTS`] buckets, each
//! level covering [`SLOT_BITS`] bits of the 64-bit second timestamp
//! (level 0 buckets are 1 s wide — exactly one timestamp per bucket; the
//! top level spans the entire remaining range, so "decades out" and even
//! `SimTime::MAX` need no special overflow path). An event's level is the
//! highest bit in which its time differs from the wheel cursor
//! (`drained_until`); popping drains the earliest occupied bucket,
//! cascading multi-timestamp buckets down one or more levels until a
//! level-0 bucket empties into the `ready` staging vector. Cascades visit
//! each event at most [`LEVELS`]&nbsp;−&nbsp;1 times over its whole life, so
//! amortised cost per event is O(1) with tiny constants (one 64-bit
//! occupancy scan per level, no hashing, no comparisons against a heap).
//!
//! Events scheduled at or before the cursor (a handler scheduling "now",
//! or callers rewinding behind the last pop) insert into `ready` by binary
//! search on `(time, seq)`, which preserves the exact global order a
//! binary heap with FIFO tie-break would produce. `tests/queue_model.rs`
//! pins that equivalence with a differential test against a reference
//! heap model.

use crate::time::SimTime;

/// Number of wheel levels; `LEVELS * SLOT_BITS >= 64` covers all of `u64`.
const LEVELS: usize = 11;
/// Bits of the timestamp consumed per level.
const SLOT_BITS: u32 = 6;
/// Buckets per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Sentinel slab index ("null pointer") for list links and the free list.
const NONE: u32 = u32::MAX;

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Generation-stamped: the handle stores the slab slot it was issued from
/// plus that slot's generation at issue time. Once the event fires or is
/// cancelled the generation advances, so a stale handle can never cancel
/// an unrelated event that later reuses the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    index: u32,
    generation: u32,
}

/// Lifecycle of a slab slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// On the free list.
    Free,
    /// Linked into a wheel bucket.
    Linked,
    /// Staged in the `ready` vector, not yet popped.
    Ready,
    /// Cancelled while staged in `ready`; swept (and freed) on the next
    /// pass over its position. Bounded: each dead entry is visited once.
    Dead,
}

struct Slot<E> {
    at: SimTime,
    seq: u64,
    /// Bucket neighbours when `Linked` (circular list, `head.prev` is the
    /// tail); free-list successor when `Free`.
    prev: u32,
    next: u32,
    generation: u32,
    /// Wheel position when `Linked` (needed for O(1) unlink).
    level: u8,
    bucket: u8,
    state: State,
    payload: Option<E>,
}

#[derive(Clone, Copy)]
struct Level {
    /// Head slab index per bucket, `NONE` when empty.
    heads: [u32; SLOTS],
    /// Bit `b` set iff `heads[b] != NONE`. Next-occupied is one
    /// `trailing_zeros` — no slot scan.
    occupied: u64,
}

impl Level {
    const EMPTY: Level = Level { heads: [NONE; SLOTS], occupied: 0 };
}

/// Level an event at `at` hangs from while the cursor sits at `current`:
/// the highest 6-bit digit in which the two times differ.
#[inline]
fn level_for(current: u64, at: u64) -> usize {
    let x = current ^ at;
    if x == 0 {
        0
    } else {
        ((63 - x.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// Bucket index of `at` within `level`.
#[inline]
fn slot_of(at: u64, level: usize) -> usize {
    ((at >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// Earliest timestamp covered by `(level, slot)` given the cursor `d`.
/// Well-defined because every occupied bucket sits inside the cursor's
/// current window at the parent level (see `advance_wheel`).
#[inline]
fn bucket_start(d: u64, level: usize, slot: usize) -> u64 {
    let low = SLOT_BITS as usize * level;
    let high = low + SLOT_BITS as usize;
    let base = if high >= 64 { 0 } else { (d >> high) << high };
    base | ((slot as u64) << low)
}

/// A priority queue of `(SimTime, payload)` events.
///
/// # Examples
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "late");
/// q.schedule(SimTime::from_secs(5), "early");
/// let (t, e) = q.pop().expect("two events pending");
/// assert_eq!((t.as_secs(), e), (5, "early"));
/// ```
pub struct EventQueue<E> {
    slab: Vec<Slot<E>>,
    /// Head of the intrusive free list threaded through `Slot::next`.
    free_head: u32,
    levels: Box<[Level; LEVELS]>,
    /// Staging area for the bucket currently being drained, in pop order.
    /// Indices before `ready_pos` have already been consumed.
    ready: Vec<u32>,
    ready_pos: usize,
    /// Wheel cursor: every event in the wheel has `at >= drained_until`;
    /// later arrivals behind the cursor go straight into `ready`.
    drained_until: u64,
    /// Live (non-cancelled, not yet fired) event count.
    live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with slab capacity for `capacity` events,
    /// avoiding reallocation while the pending count stays below it.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slab: Vec::with_capacity(capacity),
            free_head: NONE,
            levels: Box::new([Level::EMPTY; LEVELS]),
            ready: Vec::new(),
            ready_pos: 0,
            drained_until: 0,
            live: 0,
            next_seq: 0,
        }
    }

    /// Reserves slab capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.slab.reserve(additional);
    }

    /// Clears the queue for reuse, keeping allocated capacity (slab and
    /// staging vectors). Sequence numbers and the wheel cursor restart
    /// from zero, so a reset queue is indistinguishable from a fresh one —
    /// replicate workers lean on this to reuse allocations across seeds.
    ///
    /// All previously issued [`EventId`]s are invalidated and must be
    /// dropped: generation stamps restart too, so a stale handle held
    /// across `reset` could alias a new event.
    pub fn reset(&mut self) {
        self.slab.clear();
        self.free_head = NONE;
        for level in self.levels.iter_mut() {
            *level = Level::EMPTY;
        }
        self.ready.clear();
        self.ready_pos = 0;
        self.drained_until = 0;
        self.live = 0;
        self.next_seq = 0;
    }

    /// Schedules `payload` to fire at `at`, returning a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = self.alloc(at, seq, payload);
        let generation = self.slab[index as usize].generation;
        self.live += 1;
        self.place(index);
        EventId { index, generation }
    }

    /// Schedules a batch, reserving slab space up front and appending the
    /// handles to `ids` in schedule order. Equivalent to calling
    /// [`schedule`](Self::schedule) per event.
    pub fn schedule_many<I>(&mut self, events: I, ids: &mut Vec<EventId>)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.slab.reserve(lower);
        ids.reserve(lower);
        for (at, payload) in events {
            ids.push(self.schedule(at, payload));
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was pending (it will now never fire);
    /// `false` if it already fired or was already cancelled. O(1): the
    /// entry is unlinked from its bucket immediately, leaving no
    /// tombstone for pop to skip.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slab.get(id.index as usize) else {
            return false;
        };
        if slot.generation != id.generation {
            return false;
        }
        match slot.state {
            State::Linked => {
                self.unlink(id.index);
                self.free_slot(id.index);
                self.live -= 1;
                true
            }
            State::Ready => {
                // Mid-`ready` removal would shift the staging vector;
                // mark dead instead and let the sweep free it.
                let slot = &mut self.slab[id.index as usize];
                slot.state = State::Dead;
                slot.payload = None;
                slot.generation = slot.generation.wrapping_add(1);
                self.live -= 1;
                true
            }
            State::Free | State::Dead => false,
        }
    }

    /// Removes and returns the earliest live event. Ties on time pop in
    /// schedule (FIFO) order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.fill_ready() {
            return None;
        }
        let index = self.ready[self.ready_pos];
        self.ready_pos += 1;
        self.live -= 1;
        let slot = &mut self.slab[index as usize];
        let at = slot.at;
        // The ready list only ever holds occupied slots (differential-
        // tested against the heap model in tests/queue_model.rs); stay
        // panic-free in release if that invariant is ever broken.
        let Some(payload) = slot.payload.take() else {
            debug_assert!(false, "ready slot holds a payload");
            self.free_slot(index);
            return None;
        };
        self.free_slot(index);
        Some((at, payload))
    }

    /// Returns the timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.fill_ready() {
            return None;
        }
        Some(self.slab[self.ready[self.ready_pos] as usize].at)
    }

    /// Number of live (non-cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns true if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of occupied wheel buckets — a diagnostic for tests asserting
    /// that cancellation physically shrinks the wheel rather than leaving
    /// tombstones behind.
    pub fn occupied_buckets(&self) -> usize {
        self.levels.iter().map(|l| l.occupied.count_ones() as usize).sum()
    }

    /// Slab capacity in events, for tests asserting allocation reuse.
    pub fn capacity(&self) -> usize {
        self.slab.capacity()
    }

    /// Takes a slot off the free list (or grows the slab) and stamps it
    /// with the event data. State/links are set by `place`.
    fn alloc(&mut self, at: SimTime, seq: u64, payload: E) -> u32 {
        if self.free_head != NONE {
            let index = self.free_head;
            let slot = &mut self.slab[index as usize];
            self.free_head = slot.next;
            slot.at = at;
            slot.seq = seq;
            slot.payload = Some(payload);
            index
        } else {
            let index = self.slab.len();
            assert!(index < NONE as usize, "event queue slab exhausted u32 index space");
            self.slab.push(Slot {
                at,
                seq,
                prev: NONE,
                next: NONE,
                generation: 0,
                level: 0,
                bucket: 0,
                state: State::Free,
                payload: Some(payload),
            });
            index as u32
        }
    }

    /// Routes an allocated slot to the wheel, or to the `ready` staging
    /// vector (sorted by `(time, seq)`) when it lands behind the cursor.
    fn place(&mut self, index: u32) {
        let (at, seq) = {
            let slot = &self.slab[index as usize];
            (slot.at, slot.seq)
        };
        let t = at.as_secs();
        if t < self.drained_until {
            self.slab[index as usize].state = State::Ready;
            let slab = &self.slab;
            let pos = self.ready[self.ready_pos..].partition_point(|&i| {
                let s = &slab[i as usize];
                (s.at, s.seq) < (at, seq)
            });
            self.ready.insert(self.ready_pos + pos, index);
        } else {
            let level = level_for(self.drained_until, t);
            let bucket = slot_of(t, level);
            {
                let slot = &mut self.slab[index as usize];
                slot.state = State::Linked;
                slot.level = level as u8;
                slot.bucket = bucket as u8;
            }
            self.link_tail(index, level, bucket);
        }
    }

    /// Appends `index` at the tail of bucket `(level, bucket)`.
    fn link_tail(&mut self, index: u32, level: usize, bucket: usize) {
        let head = self.levels[level].heads[bucket];
        if head == NONE {
            self.levels[level].heads[bucket] = index;
            self.levels[level].occupied |= 1u64 << bucket;
            let slot = &mut self.slab[index as usize];
            slot.prev = index;
            slot.next = index;
        } else {
            let tail = self.slab[head as usize].prev;
            {
                let slot = &mut self.slab[index as usize];
                slot.prev = tail;
                slot.next = head;
            }
            self.slab[tail as usize].next = index;
            self.slab[head as usize].prev = index;
        }
    }

    /// Unlinks a `Linked` slot from its bucket, clearing the occupancy bit
    /// when the bucket empties.
    fn unlink(&mut self, index: u32) {
        let (level, bucket, prev, next) = {
            let slot = &self.slab[index as usize];
            (slot.level as usize, slot.bucket as usize, slot.prev, slot.next)
        };
        if next == index {
            self.levels[level].heads[bucket] = NONE;
            self.levels[level].occupied &= !(1u64 << bucket);
        } else {
            self.slab[prev as usize].next = next;
            self.slab[next as usize].prev = prev;
            if self.levels[level].heads[bucket] == index {
                self.levels[level].heads[bucket] = next;
            }
        }
    }

    /// Returns the slot to the free list and advances its generation so
    /// outstanding handles for it go stale.
    fn free_slot(&mut self, index: u32) {
        let slot = &mut self.slab[index as usize];
        slot.state = State::Free;
        slot.payload = None;
        slot.generation = slot.generation.wrapping_add(1);
        slot.prev = NONE;
        slot.next = self.free_head;
        self.free_head = index;
    }

    /// Ensures `ready[ready_pos]` is a live entry, sweeping dead ones and
    /// advancing the wheel as needed. Returns false when the queue is empty.
    fn fill_ready(&mut self) -> bool {
        loop {
            while self.ready_pos < self.ready.len() {
                let index = self.ready[self.ready_pos];
                match self.slab[index as usize].state {
                    State::Ready => return true,
                    _ => {
                        debug_assert_eq!(self.slab[index as usize].state, State::Dead);
                        self.free_slot(index);
                        self.ready_pos += 1;
                    }
                }
            }
            self.ready.clear();
            self.ready_pos = 0;
            if self.live == 0 {
                return false;
            }
            self.advance_wheel();
        }
    }

    /// Drains the earliest occupied bucket: a level-0 bucket (exactly one
    /// timestamp, list order = seq order) empties into `ready`; a
    /// higher-level bucket cascades its entries down — each lands at a
    /// strictly lower level, so the loop in `fill_ready` terminates.
    ///
    /// Invariant relied on throughout: an occupied bucket always lies
    /// inside the cursor's current window at the parent level, and at or
    /// after the cursor. (Insertion guarantees the former by construction;
    /// the latter holds because the cursor only ever advances to the
    /// minimum occupied bucket chosen here.) Hence `trailing_zeros` finds
    /// the earliest bucket per level with no rotation wrap-around, and
    /// `bucket_start` can rebuild high timestamp bits from the cursor.
    fn advance_wheel(&mut self) {
        let mut best: Option<(u64, usize, usize)> = None;
        for (level, lv) in self.levels.iter().enumerate() {
            if lv.occupied == 0 {
                continue;
            }
            let slot = lv.occupied.trailing_zeros() as usize;
            let start = bucket_start(self.drained_until, level, slot);
            match best {
                Some((earliest, _, _)) if earliest <= start => {}
                _ => best = Some((start, level, slot)),
            }
        }
        let Some((start, level, slot)) = best else {
            debug_assert_eq!(self.live, 0, "live events but empty wheel and ready");
            return;
        };
        debug_assert!(
            start >= self.drained_until,
            "wheel invariant violated: occupied bucket behind the cursor"
        );
        let head = self.levels[level].heads[slot];
        self.levels[level].heads[slot] = NONE;
        self.levels[level].occupied &= !(1u64 << slot);
        if level == 0 {
            // One timestamp per level-0 bucket; `ready` receives it in
            // list order, which is FIFO sequence order.
            self.drained_until = start.saturating_add(1);
            let mut cur = head;
            loop {
                let next = self.slab[cur as usize].next;
                debug_assert_eq!(self.slab[cur as usize].at.as_secs(), start);
                self.slab[cur as usize].state = State::Ready;
                self.ready.push(cur);
                if next == head {
                    break;
                }
                cur = next;
            }
        } else {
            self.drained_until = start;
            let mut cur = head;
            loop {
                let next = self.slab[cur as usize].next;
                self.place(cur);
                debug_assert!((self.slab[cur as usize].level as usize) < level);
                if next == head {
                    break;
                }
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_prevents_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let _b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_foreign_id_is_false() {
        // Handles are only meaningful in the queue that issued them; a
        // foreign id must not alias a slot here (empty slab: index out of
        // range).
        let mut other = EventQueue::new();
        let foreign = other.schedule(t(1), ());
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(foreign));
    }

    #[test]
    fn stale_id_cannot_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        // Reuses slot 0 with a bumped generation.
        let _b = q.schedule(t(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(5), 2);
        q.schedule(t(7), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        q.schedule(t(6), 4);
        assert_eq!(q.pop(), Some((t(6), 4)));
        assert_eq!(q.pop(), Some((t(7), 3)));
    }

    #[test]
    fn cancel_event_already_staged_for_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "a");
        let b = q.schedule(t(5), "b");
        q.schedule(t(9), "c");
        // Popping "a" drains the whole t=5 bucket into the staging area,
        // so "b" is cancelled in the Ready state (dead-sweep path).
        assert_eq!(q.pop(), Some((t(5), "a")));
        assert!(q.cancel(b));
        assert!(!q.cancel(b));
        assert_eq!(q.pop(), Some((t(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_cascade_correctly() {
        let mut q = EventQueue::new();
        let century = SimTime::from_secs(100 * 31_536_000);
        q.schedule(SimTime::from_secs(u64::MAX), "eon");
        q.schedule(t(1), "soon");
        q.schedule(century, "century");
        assert_eq!(q.pop(), Some((t(1), "soon")));
        assert_eq!(q.pop(), Some((century, "century")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(u64::MAX), "eon")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_preserved_across_cascade() {
        let mut q = EventQueue::new();
        // Both land in the same level-1 bucket while the cursor is at 0.
        q.schedule(t(100), 1);
        q.schedule(t(64), 0);
        assert_eq!(q.pop(), Some((t(64), 0)));
        // t=100 has cascaded down to level 0; a same-time arrival must
        // append after it despite taking the direct insertion path.
        q.schedule(t(100), 2);
        assert_eq!(q.pop(), Some((t(100), 1)));
        assert_eq!(q.pop(), Some((t(100), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_many_matches_serial_schedules() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        q.schedule_many([(t(3), "c"), (t(1), "a"), (t(3), "d"), (t(2), "b")], &mut ids);
        assert_eq!(ids.len(), 4);
        assert!(q.cancel(ids[3]));
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), Some((t(3), "d")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reset_keeps_capacity_and_restarts_clean() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        for i in 0..50 {
            q.schedule(t(i), i);
        }
        for _ in 0..20 {
            q.pop();
        }
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.occupied_buckets(), 0);
        assert_eq!(q.capacity(), cap);
        // Behaves exactly like a fresh queue.
        q.schedule(t(2), 20);
        q.schedule(t(1), 10);
        assert_eq!(q.pop(), Some((t(1), 10)));
        assert_eq!(q.pop(), Some((t(2), 20)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancellation_shrinks_the_wheel() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..256).map(|i| q.schedule(t(1_000 + i), i)).collect();
        let before = q.occupied_buckets();
        assert!(before > 1);
        for id in ids {
            assert!(q.cancel(id));
        }
        assert_eq!(q.occupied_buckets(), 0);
        assert_eq!(q.pop(), None);
    }
}
