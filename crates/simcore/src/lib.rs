//! `simcore` — deterministic discrete-event simulation substrate.
//!
//! This crate is the foundation of the `century` toolkit (a reproduction of
//! *Century-Scale Smart Infrastructure*, HotOS ’21). It provides:
//!
//! * [`time`] — a u64-second clock spanning century-scale horizons, with a
//!   simplified 365-day calendar for seasonal models and report formatting.
//! * [`rng`] — an in-tree xoshiro256\*\* generator with hierarchical stream
//!   splitting, so every simulated entity owns an independent, reproducible
//!   random stream.
//! * [`dist`] — validated samplers for the distributions the higher layers
//!   need (Weibull lifetimes, lognormal service times, Zipf populations, …).
//! * [`event`] / [`engine`] — a stable-FIFO event queue and the
//!   discrete-event loop.
//! * [`stats`], [`quantile`], [`survival`], [`series`] — single-pass
//!   statistics, the P² streaming quantile, Kaplan–Meier survival curves,
//!   and time-series recording for figures.
//! * [`trace`] — the structured "experimental diary" the paper commits to
//!   publishing (§4.5).
//! * [`snapshot`] — the versioned, checksummed binary substrate for
//!   checkpoint/restore: atomic writes, torn-file rejection, and the
//!   byte codecs higher layers serialize world state with.
//!
//! # Quick example
//!
//! ```
//! use simcore::engine::{Ctx, Engine, World};
//! use simcore::dist::Exponential;
//! use simcore::rng::Rng;
//! use simcore::time::{SimDuration, SimTime};
//!
//! // A device that fails after an exponential lifetime and is replaced
//! // after a fixed truck-roll delay, forever.
//! struct Fleet {
//!     rng: Rng,
//!     ttf: Exponential,
//!     failures: u32,
//! }
//!
//! enum Ev { Fail, Replaced }
//!
//! impl World for Fleet {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
//!         match ev {
//!             Ev::Fail => {
//!                 self.failures += 1;
//!                 ctx.schedule_in(SimDuration::from_days(3), Ev::Replaced);
//!             }
//!             Ev::Replaced => {
//!                 let life = SimDuration::from_years_f64(self.ttf.sample(&mut self.rng));
//!                 ctx.schedule_in(life, Ev::Fail);
//!             }
//!         }
//!     }
//! }
//!
//! let ttf = Exponential::with_mean(4.0).unwrap(); // Mean 4-year lifetime.
//! let mut engine = Engine::new(Fleet { rng: Rng::seed_from(1), ttf, failures: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Replaced);
//! engine.run_until(SimTime::from_years(50));
//! // Roughly 50/4 failures over the horizon.
//! assert!(engine.world().failures > 5);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dist;
pub mod engine;
pub mod error;
pub mod event;
pub mod quantile;
pub mod rng;
pub mod series;
pub mod snapshot;
pub mod stats;
pub mod survival;
pub mod time;
pub mod trace;

pub use engine::{
    Ctx, Engine, EngineCheckpoint, EngineProfile, FaultHook, RunOutcome, SimError,
    UnknownEventKind, Watchdog, World,
};
pub use error::ModelError;
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
