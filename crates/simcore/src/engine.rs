//! The discrete-event simulation loop.
//!
//! A simulation is a [`World`] — user state plus an event handler — driven by
//! an [`Engine`] that owns the clock and the [`EventQueue`]. The handler
//! receives a [`Ctx`] through which it schedules follow-up events, cancels
//! pending ones, and requests a stop. This inversion (engine owns the queue,
//! world owns the model) keeps borrows simple and the loop allocation-free.
//!
//! # Examples
//!
//! A minimal counter that reschedules itself until the horizon:
//!
//! ```
//! use simcore::engine::{Ctx, Engine, World};
//! use simcore::time::{SimDuration, SimTime};
//!
//! struct Ticker {
//!     ticks: u64,
//! }
//!
//! impl World for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _event: ()) {
//!         self.ticks += 1;
//!         ctx.schedule_in(SimDuration::from_days(1), ());
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.schedule_at(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_days(10));
//! assert_eq!(engine.world().ticks, 10);
//! ```

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// User-provided simulation state and event handler.
pub trait World {
    /// The event payload type routed through the queue.
    type Event;

    /// Handles one event at the current simulation time (`ctx.now()`).
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

/// Handler-side view of the engine: the clock and scheduling operations.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<E> Ctx<'_, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before `now`). Scheduling *at* `now`
    /// is allowed and fires after the current event (FIFO).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event)
    }

    /// Schedules an event `delay` after the current time, saturating at the
    /// end of representable time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now.saturating_add(delay), event)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests that the engine stop after the current event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// Why a call to [`Engine::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached; events at or beyond it remain pending.
    HorizonReached,
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// A handler called [`Ctx::stop`].
    Stopped,
}

/// The discrete-event engine: clock + queue + world.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    stop: bool,
    processed: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero wrapping `world`.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            stop: false,
            processed: 0,
        }
    }

    /// Schedules an event before or between runs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event)
    }

    /// Runs until the clock would pass `horizon`, the queue empties, or a
    /// handler stops the run. Events exactly at `horizon` do **not** fire;
    /// the clock is left at `horizon` when it is reached.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.stop {
                // Consume the stop request so the engine can be resumed.
                self.stop = false;
                return RunOutcome::Stopped;
            }
            let Some(at) = self.queue.peek_time() else {
                if self.now < horizon {
                    self.now = horizon;
                }
                return RunOutcome::QueueEmpty;
            };
            if at >= horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            let (at, event) = self.queue.pop().expect("peeked event exists");
            self.now = at;
            self.processed += 1;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                stop: &mut self.stop,
            };
            self.world.handle(&mut ctx, event);
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
        stop_on: Option<u32>,
        chain: bool,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, event: u32) {
            self.seen.push((ctx.now().as_secs(), event));
            if Some(event) == self.stop_on {
                ctx.stop();
            }
            if self.chain && event < 5 {
                ctx.schedule_in(SimDuration::from_secs(10), event + 1);
            }
        }
    }

    #[test]
    fn processes_in_order_and_reaches_horizon() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(20), 2);
        e.schedule_at(SimTime::from_secs(10), 1);
        let out = e.run_until(SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(e.now(), SimTime::from_secs(100));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn horizon_excludes_boundary_event() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(50), 1);
        let out = e.run_until(SimTime::from_secs(50));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert!(e.world().seen.is_empty());
        assert_eq!(e.pending_events(), 1);
        // Resuming past the boundary fires it.
        let out = e.run_until(SimTime::from_secs(51));
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(50, 1)]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut e = Engine::new(Recorder { chain: true, ..Default::default() });
        e.schedule_at(SimTime::ZERO, 1);
        e.run_until(SimTime::from_secs(1_000));
        assert_eq!(
            e.world().seen,
            vec![(0, 1), (10, 2), (20, 3), (30, 4), (40, 5)]
        );
    }

    #[test]
    fn stop_halts_and_resumes() {
        let mut e = Engine::new(Recorder { stop_on: Some(2), ..Default::default() });
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        e.schedule_at(SimTime::from_secs(3), 3);
        let out = e.run_until(SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(e.now(), SimTime::from_secs(2));
        // Resume picks up remaining events.
        let out = e.run_until(SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(10), 1);
        e.run_until(SimTime::from_secs(100));
        e.schedule_at(SimTime::from_secs(5), 2);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut e = Engine::new(Recorder::default());
        for i in 0..10 {
            e.schedule_at(SimTime::from_secs(7), i);
        }
        e.run_until(SimTime::from_secs(8));
        let order: Vec<u32> = e.world().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn into_world_returns_state() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::ZERO, 9);
        e.run_until(SimTime::from_secs(1));
        let w = e.into_world();
        assert_eq!(w.seen, vec![(0, 9)]);
    }
}
