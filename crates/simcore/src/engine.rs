//! The discrete-event simulation loop.
//!
//! A simulation is a [`World`] — user state plus an event handler — driven by
//! an [`Engine`] that owns the clock and the [`EventQueue`]. The handler
//! receives a [`Ctx`] through which it schedules follow-up events, cancels
//! pending ones, and requests a stop. This inversion (engine owns the queue,
//! world owns the model) keeps borrows simple and the loop allocation-free.
//!
//! # Examples
//!
//! A minimal counter that reschedules itself until the horizon:
//!
//! ```
//! use simcore::engine::{Ctx, Engine, World};
//! use simcore::time::{SimDuration, SimTime};
//!
//! struct Ticker {
//!     ticks: u64,
//! }
//!
//! impl World for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _event: ()) {
//!         self.ticks += 1;
//!         ctx.schedule_in(SimDuration::from_days(1), ());
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.schedule_at(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_days(10));
//! assert_eq!(engine.world().ticks, 10);
//! ```

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// User-provided simulation state and event handler.
pub trait World {
    /// The event payload type routed through the queue.
    type Event;

    /// Handles one event at the current simulation time (`ctx.now()`).
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);

    /// A stable label for an event, used by [`EngineProfile`] to break
    /// dispatch counts down per kind. The default lumps everything under
    /// one label; worlds with an event enum should map each variant to
    /// its own name.
    fn event_kind(_event: &Self::Event) -> &'static str {
        "event"
    }
}

/// Every how many dispatches the engine wraps `World::handle` in an
/// `Instant::now()` pair. Power of two so the hot-loop check is one mask.
const PROFILE_SAMPLE_EVERY: u64 = 1024;

/// Per-run profiling collected by the engine: where the simulated
/// half-century went.
///
/// Dispatch counts and the queue high-water mark are deterministic for a
/// deterministic world. [`handler_nanos`](Self::handler_nanos) and
/// `run_nanos` are wall-clock and vary run to run — they are **excluded
/// from run digests** by contract (DESIGN.md §6). Handler time is
/// *sampled* (every [`PROFILE_SAMPLE_EVERY`]th dispatch) so profiling
/// costs two clock reads per ~thousand events instead of per event; see
/// DESIGN.md §7 for the contract.
#[derive(Clone, Debug, Default)]
pub struct EngineProfile {
    /// Dispatch counts per event kind, in first-dispatch order.
    kinds: Vec<(&'static str, u64)>,
    /// Highest pending-event count observed at a dispatch point.
    pub queue_high_water: usize,
    /// Wall-clock nanoseconds measured across sampled handler dispatches.
    handler_sampled_nanos: u64,
    /// Number of dispatches that were timed.
    handler_samples: u64,
    /// Wall-clock nanoseconds spent inside engine run calls (handlers,
    /// hooks, and queue operations together).
    pub run_nanos: u64,
    /// Fault-hook firings interleaved into the run.
    pub hook_fires: u64,
}

impl EngineProfile {
    /// Per-kind dispatch counts, in first-dispatch order.
    pub fn dispatches(&self) -> &[(&'static str, u64)] {
        &self.kinds
    }

    /// Dispatches of one kind (zero if never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.kinds.iter().find(|(k, _)| *k == kind).map_or(0, |&(_, n)| n)
    }

    /// Total events dispatched across all kinds.
    pub fn total_dispatched(&self) -> u64 {
        self.kinds.iter().map(|&(_, n)| n).sum()
    }

    /// Estimated wall-clock nanoseconds spent inside `World::handle`,
    /// scaled up from the sampled dispatches
    /// (`sampled_nanos × dispatched ⁄ samples`). Zero when nothing has
    /// been sampled yet. An estimate — it can legitimately exceed
    /// `run_nanos` when the sampled dispatches were unrepresentative.
    pub fn handler_nanos(&self) -> u64 {
        if self.handler_samples == 0 {
            return 0;
        }
        let scaled = self.handler_sampled_nanos as u128 * self.total_dispatched() as u128
            / self.handler_samples as u128;
        u64::try_from(scaled).unwrap_or(u64::MAX)
    }

    /// Number of dispatches whose handler time was measured (one per
    /// [`PROFILE_SAMPLE_EVERY`] dispatches, starting with the first).
    pub fn handler_samples(&self) -> u64 {
        self.handler_samples
    }

    #[inline]
    fn record(&mut self, kind: &'static str) {
        // The kind set is tiny (one entry per event-enum variant), so a
        // linear scan beats hashing on this hot path.
        for entry in &mut self.kinds {
            if entry.0 == kind {
                entry.1 += 1;
                return;
            }
        }
        self.kinds.push((kind, 1));
    }

    fn record_n(&mut self, kind: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        for entry in &mut self.kinds {
            if entry.0 == kind {
                entry.1 += n;
                return;
            }
        }
        self.kinds.push((kind, n));
    }

    /// Folds a shard's profile into this one so the merged profile of a
    /// sharded run matches the serial profile's dispatch counts.
    ///
    /// Kinds listed in `duplicated` are tick chains every shard replays
    /// (e.g. the weekly evaluation barrier): a serial run dispatches each
    /// once per tick, so they are *not* summed — this profile (shard 0's)
    /// already carries the canonical count. Everything else is owned by
    /// exactly one shard and sums. Wall-clock fields keep the maximum
    /// (shards run concurrently) except handler sampling, which sums so
    /// `handler_nanos` stays a cross-shard estimate.
    pub fn absorb_shard(&mut self, other: &EngineProfile, duplicated: &[&str]) {
        for &(kind, n) in &other.kinds {
            if duplicated.contains(&kind) {
                continue;
            }
            self.record_n(kind, n);
        }
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.handler_sampled_nanos += other.handler_sampled_nanos;
        self.handler_samples += other.handler_samples;
        self.run_nanos = self.run_nanos.max(other.run_nanos);
        self.hook_fires += other.hook_fires;
    }
}

/// Handler-side view of the engine: the clock and scheduling operations.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<E> Ctx<'_, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before `now`). Scheduling *at* `now`
    /// is allowed and fires after the current event (FIFO).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event)
    }

    /// Schedules an event `delay` after the current time, saturating at the
    /// end of representable time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now.saturating_add(delay), event)
    }

    /// Fallible version of [`Ctx::schedule_at`]: returns
    /// [`SimError::ScheduledInPast`] instead of panicking.
    pub fn try_schedule_at(&mut self, at: SimTime, event: E) -> Result<EventId, SimError> {
        if at < self.now {
            return Err(SimError::ScheduledInPast { at, now: self.now });
        }
        Ok(self.queue.schedule(at, event))
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests that the engine stop after the current event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// Structured diagnosis returned by the checked engine entry points.
///
/// Mirrors the `FitError` / `ProtocolError` pattern: every way the engine
/// can go wrong is a typed variant instead of a panic or a hang.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An event was scheduled before the current clock.
    ScheduledInPast {
        /// The requested (past) time.
        at: SimTime,
        /// The clock when the request was made.
        now: SimTime,
    },
    /// A handler kept rescheduling at the same instant: the clock cannot
    /// advance and an unchecked run would spin forever.
    Livelock {
        /// The instant the simulation is stuck at.
        at: SimTime,
        /// Events processed at that instant before the watchdog fired.
        events: u64,
    },
    /// Event volume within one simulated day exceeded the watchdog budget
    /// (unbounded self-rescheduling that *does* advance the clock).
    EventStorm {
        /// The simulated day (days since time zero) that blew the budget.
        day: u64,
        /// Events processed within that day before the watchdog fired.
        events: u64,
    },
    /// The queue drained before the horizon while the watchdog was told
    /// starvation is abnormal for this workload.
    Starvation {
        /// The clock when the queue emptied.
        at: SimTime,
        /// The horizon the run was supposed to reach.
        horizon: SimTime,
    },
    /// The queue yielded an event timestamped before the clock — a
    /// time-monotonicity violation inside the scheduling substrate.
    TimeRegression {
        /// The engine clock.
        now: SimTime,
        /// The (earlier) event timestamp.
        event_at: SimTime,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::ScheduledInPast { at, now } => {
                write!(f, "scheduled into the past: at={at:?} < now={now:?}")
            }
            SimError::Livelock { at, events } => {
                write!(f, "livelock: {events} events at {at:?} without the clock advancing")
            }
            SimError::EventStorm { day, events } => {
                write!(f, "event storm: {events} events within simulated day {day}")
            }
            SimError::Starvation { at, horizon } => {
                write!(f, "queue starved at {at:?} before horizon {horizon:?}")
            }
            SimError::TimeRegression { now, event_at } => {
                write!(f, "time regression: event at {event_at:?} behind clock {now:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Budgets for [`Engine::run_until_checked`].
///
/// The defaults are far above anything a healthy fleet simulation produces
/// (a 50-year run processes a few thousand events total) while still
/// catching a runaway handler within milliseconds of wall-clock time.
#[derive(Clone, Copy, Debug)]
pub struct Watchdog {
    /// Maximum events processed at a single instant before the run is
    /// declared a [`SimError::Livelock`].
    pub max_events_per_instant: u64,
    /// Maximum events processed within one simulated day before the run is
    /// declared a [`SimError::EventStorm`].
    pub max_events_per_day: u64,
    /// When `true`, the queue draining before the horizon is reported as
    /// [`SimError::Starvation`] instead of a normal `QueueEmpty` outcome.
    pub starvation_is_error: bool,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            max_events_per_instant: 100_000,
            max_events_per_day: 1_000_000,
            starvation_is_error: false,
        }
    }
}

/// A source of scheduled faults interleaved with a [`World`]'s own events.
///
/// The hook lives on the *engine*, not inside the world: any `World` can be
/// run under fault injection without modifying its handler. At each step
/// the engine fires every fault due at or before the next world event
/// (faults win ties), handing the hook direct access to the world and a
/// scheduling context.
pub trait FaultHook<W: World> {
    /// The time of the next pending fault, if any. Must be non-decreasing
    /// across calls unless [`FaultHook::fire`] consumed faults.
    fn next_fault_at(&self) -> Option<SimTime>;

    /// Applies every fault due at `now` to the world. The hook must advance
    /// its own cursor so `next_fault_at` moves past `now`.
    fn fire(&mut self, now: SimTime, world: &mut W, ctx: &mut Ctx<'_, W::Event>);
}

/// A no-op hook used by the unhooked entry points.
struct NoFaults;

impl<W: World> FaultHook<W> for NoFaults {
    fn next_fault_at(&self) -> Option<SimTime> {
        None
    }
    fn fire(&mut self, _now: SimTime, _world: &mut W, _ctx: &mut Ctx<'_, W::Event>) {}
}

/// Why a call to [`Engine::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached; events at or beyond it remain pending.
    HorizonReached,
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// A handler called [`Ctx::stop`].
    Stopped,
}

/// The discrete-event engine: clock + queue + world.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    stop: bool,
    processed: u64,
    profile: EngineProfile,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero wrapping `world`.
    pub fn new(world: W) -> Self {
        Self::new_with_queue(world, EventQueue::new())
    }

    /// Creates an engine at time zero with queue capacity for `capacity`
    /// pending events, avoiding queue reallocation below that mark.
    pub fn with_event_capacity(world: W, capacity: usize) -> Self {
        Self::new_with_queue(world, EventQueue::with_capacity(capacity))
    }

    /// Creates an engine at time zero reusing `queue`'s allocations — the
    /// replicate-worker fast path, which recycles one queue across seeds
    /// instead of reallocating per run. The queue is [`reset`]
    /// (`EventQueue::reset`), so any event ids issued before the handoff
    /// are invalidated and must be dropped.
    pub fn new_with_queue(world: W, mut queue: EventQueue<W::Event>) -> Self {
        queue.reset();
        Engine {
            world,
            queue,
            now: SimTime::ZERO,
            stop: false,
            processed: 0,
            profile: EngineProfile::default(),
        }
    }

    /// Schedules an event before or between runs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event)
    }

    /// Batch version of [`Engine::schedule_at`]: reserves queue space up
    /// front and appends the handles to `ids` in schedule order.
    ///
    /// # Panics
    ///
    /// Panics if any event time is before the current clock.
    pub fn schedule_many<I>(&mut self, events: I, ids: &mut Vec<EventId>)
    where
        I: IntoIterator<Item = (SimTime, W::Event)>,
    {
        let now = self.now;
        self.queue.schedule_many(
            events.into_iter().inspect(move |&(at, _)| {
                assert!(at >= now, "cannot schedule into the past");
            }),
            ids,
        );
    }

    /// Fallible version of [`Engine::schedule_at`]: returns
    /// [`SimError::ScheduledInPast`] instead of panicking.
    pub fn try_schedule_at(&mut self, at: SimTime, event: W::Event) -> Result<EventId, SimError> {
        if at < self.now {
            return Err(SimError::ScheduledInPast { at, now: self.now });
        }
        Ok(self.queue.schedule(at, event))
    }

    /// Runs until the clock would pass `horizon`, the queue empties, or a
    /// handler stops the run. Events exactly at `horizon` do **not** fire;
    /// the clock is left at `horizon` when it is reached.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        match self.run_supervised(horizon, &mut NoFaults, None) {
            Ok(outcome) => outcome,
            // No watchdog is installed, so no supervised error can occur.
            Err(e) => unreachable!("unchecked run cannot fail: {e}"),
        }
    }

    /// Runs like [`Engine::run_until`] with a [`FaultHook`] interleaved:
    /// every fault due before the next world event is applied first (faults
    /// win ties with events at the same instant).
    pub fn run_until_hooked(
        &mut self,
        horizon: SimTime,
        hook: &mut dyn FaultHook<W>,
    ) -> RunOutcome {
        match self.run_supervised(horizon, hook, None) {
            Ok(outcome) => outcome,
            Err(e) => unreachable!("unchecked run cannot fail: {e}"),
        }
    }

    /// Runs like [`Engine::run_until`] under a [`Watchdog`], returning a
    /// structured [`SimError`] diagnosis instead of hanging or panicking
    /// when the world misbehaves (livelock, event storm, starvation).
    pub fn run_until_checked(
        &mut self,
        horizon: SimTime,
        watchdog: &Watchdog,
    ) -> Result<RunOutcome, SimError> {
        self.run_supervised(horizon, &mut NoFaults, Some(watchdog))
    }

    /// [`Engine::run_until_checked`] with a [`FaultHook`] interleaved.
    pub fn run_until_checked_hooked(
        &mut self,
        horizon: SimTime,
        hook: &mut dyn FaultHook<W>,
        watchdog: &Watchdog,
    ) -> Result<RunOutcome, SimError> {
        self.run_supervised(horizon, hook, Some(watchdog))
    }

    fn run_supervised(
        &mut self,
        horizon: SimTime,
        hook: &mut dyn FaultHook<W>,
        watchdog: Option<&Watchdog>,
    ) -> Result<RunOutcome, SimError> {
        // simlint: allow(D002, EngineProfile run wall-clock; excluded from digests per DESIGN.md §6)
        let run_started = std::time::Instant::now();
        let result = self.run_supervised_inner(horizon, hook, watchdog);
        self.profile.run_nanos += run_started.elapsed().as_nanos() as u64;
        result
    }

    fn run_supervised_inner(
        &mut self,
        horizon: SimTime,
        hook: &mut dyn FaultHook<W>,
        watchdog: Option<&Watchdog>,
    ) -> Result<RunOutcome, SimError> {
        let mut instant_at = self.now;
        let mut instant_events: u64 = 0;
        let mut day = self.now.as_secs() / 86_400;
        let mut day_events: u64 = 0;
        loop {
            if self.stop {
                // Consume the stop request so the engine can be resumed.
                self.stop = false;
                return Ok(RunOutcome::Stopped);
            }
            // Faults due before the next event (or before the horizon when
            // the queue is empty) fire first; ties go to the fault so an
            // outage starting "this week" suppresses this week's readings.
            let fault_at = hook.next_fault_at().filter(|&t| t < horizon);
            let event_at = self.queue.peek_time();
            if let Some(fat) = fault_at {
                let fault_first = match event_at {
                    Some(eat) => fat <= eat,
                    None => true,
                };
                if fault_first {
                    self.now = self.now.max(fat);
                    let mut ctx = Ctx {
                        now: self.now,
                        queue: &mut self.queue,
                        stop: &mut self.stop,
                    };
                    hook.fire(self.now, &mut self.world, &mut ctx);
                    self.profile.hook_fires += 1;
                    continue;
                }
            }
            let Some(at) = event_at else {
                if self.now < horizon {
                    self.now = horizon;
                }
                if let Some(w) = watchdog {
                    if w.starvation_is_error {
                        return Err(SimError::Starvation { at: self.now, horizon });
                    }
                }
                return Ok(RunOutcome::QueueEmpty);
            };
            if at >= horizon {
                self.now = horizon;
                return Ok(RunOutcome::HorizonReached);
            }
            if at < self.now {
                return Err(SimError::TimeRegression { now: self.now, event_at: at });
            }
            if let Some(w) = watchdog {
                if at == instant_at {
                    instant_events += 1;
                    if instant_events >= w.max_events_per_instant {
                        return Err(SimError::Livelock { at, events: instant_events });
                    }
                } else {
                    instant_at = at;
                    instant_events = 1;
                }
                let at_day = at.as_secs() / 86_400;
                if at_day == day {
                    day_events += 1;
                    if day_events >= w.max_events_per_day {
                        return Err(SimError::EventStorm { day, events: day_events });
                    }
                } else {
                    day = at_day;
                    day_events = 1;
                }
            }
            let pending = self.queue.len();
            if pending > self.profile.queue_high_water {
                self.profile.queue_high_water = pending;
            }
            // The peek above guarantees a pending event; stay panic-free
            // anyway (an empty pop here would mean queue corruption, which
            // the golden digests would surface immediately).
            let Some((at, event)) = self.queue.pop() else {
                return Ok(RunOutcome::QueueEmpty);
            };
            self.now = at;
            // Sample handler wall-clock on the first dispatch and every
            // PROFILE_SAMPLE_EVERY-th after; `handler_nanos()` scales the
            // samples back up. Keeps the two clock reads per event off
            // the hot path (DESIGN.md §7).
            let sampled = self.processed & (PROFILE_SAMPLE_EVERY - 1) == 0;
            self.processed += 1;
            self.profile.record(W::event_kind(&event));
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                stop: &mut self.stop,
            };
            if sampled {
                // simlint: allow(D002, EngineProfile sampled handler timing; excluded from digests per DESIGN.md §6)
                let handler_started = std::time::Instant::now();
                self.world.handle(&mut ctx, event);
                self.profile.handler_sampled_nanos +=
                    handler_started.elapsed().as_nanos() as u64;
                self.profile.handler_samples += 1;
            } else {
                self.world.handle(&mut ctx, event);
            }
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Profiling collected so far (cumulative across run calls).
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Consumes the engine, returning the world and the queue so a
    /// follow-up run (next replicate seed) can reuse its allocations via
    /// [`Engine::new_with_queue`].
    pub fn into_parts(self) -> (W, EventQueue<W::Event>) {
        (self.world, self.queue)
    }

    /// Rebuilds an engine mid-run from a [`checkpoint`](Engine::checkpoint)
    /// capture and a freshly reconstructed world.
    ///
    /// `resolve_kind` maps each checkpointed dispatch-count name back to
    /// the world's `&'static` event-kind string (the caller knows its own
    /// [`World::event_kind`] table); an unknown name is a typed error, not
    /// a silently dropped counter — sharded merges recompute
    /// `events_processed` from these counts, so they must be exact.
    ///
    /// Pending events are re-scheduled in checkpoint order, which is the
    /// original (time, FIFO) pop order: fresh sequence numbers assigned in
    /// that order reproduce every tie-break of the uninterrupted run.
    /// Wall-clock profiling fields restart from zero; they are excluded
    /// from run digests by contract (DESIGN.md §6).
    ///
    /// # Errors
    ///
    /// [`UnknownEventKind`] if a dispatch name fails to resolve — the
    /// checkpoint belongs to a different world shape.
    pub fn resume<F>(
        world: W,
        checkpoint: EngineCheckpoint<W::Event>,
        resolve_kind: F,
    ) -> Result<Self, UnknownEventKind>
    where
        F: Fn(&str) -> Option<&'static str>,
    {
        let mut profile = EngineProfile::default();
        for (name, n) in &checkpoint.dispatches {
            let Some(kind) = resolve_kind(name) else {
                return Err(UnknownEventKind { name: name.clone() });
            };
            profile.record_n(kind, *n);
        }
        profile.queue_high_water = checkpoint.queue_high_water;
        profile.hook_fires = checkpoint.hook_fires;
        let mut queue = EventQueue::with_capacity(checkpoint.events.len());
        let mut ids = Vec::with_capacity(checkpoint.events.len());
        queue.schedule_many(checkpoint.events, &mut ids);
        Ok(Engine {
            world,
            queue,
            now: checkpoint.now,
            stop: false,
            processed: checkpoint.processed,
            profile,
        })
    }
}

impl<W: World> Engine<W>
where
    W::Event: Clone,
{
    /// Captures the engine's execution state — clock, dispatch counts,
    /// and every pending event in (time, FIFO) pop order — without
    /// stopping the run.
    ///
    /// The queue is drained to observe its order, then rebuilt in place:
    /// fresh sequence numbers assigned in drain order preserve the
    /// relative order of every same-time tie, and events scheduled later
    /// still sort after them, so continuing the run after a checkpoint is
    /// bit-identical to never having checkpointed. Event ids issued
    /// before the capture are invalidated; worlds that retain ids across
    /// handler calls must not be checkpointed mid-flight.
    pub fn checkpoint(&mut self) -> EngineCheckpoint<W::Event> {
        let mut events = Vec::with_capacity(self.queue.len());
        while let Some((at, ev)) = self.queue.pop() {
            events.push((at, ev));
        }
        self.queue.reset();
        let mut ids = Vec::with_capacity(events.len());
        self.queue.schedule_many(events.iter().map(|(at, ev)| (*at, ev.clone())), &mut ids);
        EngineCheckpoint {
            now: self.now,
            processed: self.processed,
            dispatches: self.profile.kinds.iter().map(|&(k, n)| (k.to_string(), n)).collect(),
            queue_high_water: self.profile.queue_high_water,
            hook_fires: self.profile.hook_fires,
            events,
        }
    }

    /// Runs to the checkpoint boundary `at` (events exactly at `at` stay
    /// pending, per the horizon-exclusive contract — the natural weekly
    /// boundary semantics) and captures a checkpoint there.
    ///
    /// # Errors
    ///
    /// [`SimError::ScheduledInPast`] if `at` is before the current clock.
    pub fn checkpoint_at(&mut self, at: SimTime) -> Result<EngineCheckpoint<W::Event>, SimError> {
        if at < self.now {
            return Err(SimError::ScheduledInPast { at, now: self.now });
        }
        self.run_until(at);
        Ok(self.checkpoint())
    }
}

/// A pure-data capture of an [`Engine`]'s mid-run execution state:
/// everything the engine itself owns that the world cannot rebuild.
/// Produced by [`Engine::checkpoint`], consumed by [`Engine::resume`];
/// the snapshot layers serialize it with [`crate::snapshot`] codecs.
#[derive(Clone, Debug)]
pub struct EngineCheckpoint<E> {
    /// The simulation clock at capture.
    pub now: SimTime,
    /// Events processed so far.
    pub processed: u64,
    /// Per-kind dispatch counts, as owned strings (the `&'static` kind
    /// table is re-resolved on resume).
    pub dispatches: Vec<(String, u64)>,
    /// Queue depth high-water mark.
    pub queue_high_water: usize,
    /// Fault-hook fires so far.
    pub hook_fires: u64,
    /// Every pending event, in (time, FIFO) pop order.
    pub events: Vec<(SimTime, E)>,
}

/// A checkpointed dispatch-count name that the resuming world does not
/// recognise — the checkpoint belongs to a different world shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownEventKind {
    /// The unresolvable event-kind name.
    pub name: String,
}

impl core::fmt::Display for UnknownEventKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "checkpoint names unknown event kind '{}'", self.name)
    }
}

impl std::error::Error for UnknownEventKind {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
        stop_on: Option<u32>,
        chain: bool,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, event: u32) {
            self.seen.push((ctx.now().as_secs(), event));
            if Some(event) == self.stop_on {
                ctx.stop();
            }
            if self.chain && event < 5 {
                ctx.schedule_in(SimDuration::from_secs(10), event + 1);
            }
        }
    }

    #[test]
    fn processes_in_order_and_reaches_horizon() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(20), 2);
        e.schedule_at(SimTime::from_secs(10), 1);
        let out = e.run_until(SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(e.now(), SimTime::from_secs(100));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn horizon_excludes_boundary_event() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(50), 1);
        let out = e.run_until(SimTime::from_secs(50));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert!(e.world().seen.is_empty());
        assert_eq!(e.pending_events(), 1);
        // Resuming past the boundary fires it.
        let out = e.run_until(SimTime::from_secs(51));
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(50, 1)]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut e = Engine::new(Recorder { chain: true, ..Default::default() });
        e.schedule_at(SimTime::ZERO, 1);
        e.run_until(SimTime::from_secs(1_000));
        assert_eq!(
            e.world().seen,
            vec![(0, 1), (10, 2), (20, 3), (30, 4), (40, 5)]
        );
    }

    #[test]
    fn stop_halts_and_resumes() {
        let mut e = Engine::new(Recorder { stop_on: Some(2), ..Default::default() });
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        e.schedule_at(SimTime::from_secs(3), 3);
        let out = e.run_until(SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(e.now(), SimTime::from_secs(2));
        // Resume picks up remaining events.
        let out = e.run_until(SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(10), 1);
        e.run_until(SimTime::from_secs(100));
        e.schedule_at(SimTime::from_secs(5), 2);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut e = Engine::new(Recorder::default());
        for i in 0..10 {
            e.schedule_at(SimTime::from_secs(7), i);
        }
        e.run_until(SimTime::from_secs(8));
        let order: Vec<u32> = e.world().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn into_world_returns_state() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::ZERO, 9);
        e.run_until(SimTime::from_secs(1));
        let w = e.into_world();
        assert_eq!(w.seen, vec![(0, 9)]);
    }

    #[test]
    fn try_schedule_at_rejects_past_without_panicking() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(10), 1);
        e.run_until(SimTime::from_secs(100));
        let err = e.try_schedule_at(SimTime::from_secs(5), 2).unwrap_err();
        assert_eq!(
            err,
            SimError::ScheduledInPast {
                at: SimTime::from_secs(5),
                now: SimTime::from_secs(100)
            }
        );
        assert!(e.try_schedule_at(SimTime::from_secs(100), 3).is_ok());
    }

    /// A world that reschedules itself at the *same instant* forever: the
    /// classic livelock an unchecked engine would spin on.
    struct SameInstantLoop;

    impl World for SameInstantLoop {
        type Event = ();
        fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _event: ()) {
            let now = ctx.now();
            ctx.schedule_at(now, ());
        }
    }

    #[test]
    fn watchdog_catches_self_rescheduling_livelock_within_a_day() {
        let mut e = Engine::new(SameInstantLoop);
        e.schedule_at(SimTime::ZERO, ());
        let err = e
            .run_until_checked(SimTime::from_days(365), &Watchdog::default())
            .unwrap_err();
        match err {
            SimError::Livelock { at, events } => {
                // Caught before one simulated day elapsed.
                assert!(at < SimTime::from_days(1), "stuck at {at:?}");
                assert_eq!(events, Watchdog::default().max_events_per_instant);
            }
            other => panic!("expected Livelock, got {other:?}"),
        }
    }

    /// A world that advances the clock by one second per event — never
    /// stuck at an instant, but an unbounded storm per simulated day.
    struct SecondTicker;

    impl World for SecondTicker {
        type Event = ();
        fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _event: ()) {
            ctx.schedule_in(SimDuration::from_secs(1), ());
        }
    }

    #[test]
    fn watchdog_catches_event_storm() {
        let mut e = Engine::new(SecondTicker);
        e.schedule_at(SimTime::ZERO, ());
        let wd = Watchdog { max_events_per_day: 1_000, ..Watchdog::default() };
        let err = e.run_until_checked(SimTime::from_days(365), &wd).unwrap_err();
        match err {
            SimError::EventStorm { day: 0, events: 1_000 } => {}
            other => panic!("expected EventStorm on day 0, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_reports_starvation_when_asked() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(1), 1);
        let wd = Watchdog { starvation_is_error: true, ..Watchdog::default() };
        let err = e.run_until_checked(SimTime::from_secs(100), &wd).unwrap_err();
        assert_eq!(
            err,
            SimError::Starvation {
                at: SimTime::from_secs(100),
                horizon: SimTime::from_secs(100)
            }
        );
    }

    #[test]
    fn checked_run_passes_healthy_world_through() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(3), 1);
        e.schedule_at(SimTime::from_secs(5), 2);
        let out = e
            .run_until_checked(SimTime::from_secs(10), &Watchdog::default())
            .expect("healthy world");
        assert_eq!(out, RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![(3, 1), (5, 2)]);
    }

    /// Hook that records fire times and injects a marker event.
    struct EveryTen {
        next: u64,
        fired: Vec<u64>,
    }

    impl FaultHook<Recorder> for EveryTen {
        fn next_fault_at(&self) -> Option<SimTime> {
            Some(SimTime::from_secs(self.next))
        }
        fn fire(&mut self, now: SimTime, _world: &mut Recorder, ctx: &mut Ctx<'_, u32>) {
            self.fired.push(now.as_secs());
            ctx.schedule_at(now, 999);
            self.next += 10;
        }
    }

    #[test]
    fn hook_fires_before_tied_events_and_respects_horizon() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(10), 1);
        e.schedule_at(SimTime::from_secs(25), 2);
        let mut hook = EveryTen { next: 10, fired: Vec::new() };
        let out = e.run_until_hooked(SimTime::from_secs(31), &mut hook);
        assert_eq!(out, RunOutcome::QueueEmpty);
        // Faults at 10, 20, 30 all fire (30 < 31). The fault at 10 wins the
        // tie with the world's event, but its marker enters the queue
        // behind the already-scheduled event (FIFO at equal times).
        assert_eq!(hook.fired, vec![10, 20, 30]);
        assert_eq!(
            e.world().seen,
            vec![(10, 1), (10, 999), (20, 999), (25, 2), (30, 999)]
        );
    }

    /// Two-kind world for profile tests: pings reschedule as pongs.
    struct PingPong;

    impl World for PingPong {
        type Event = bool;
        fn handle(&mut self, ctx: &mut Ctx<'_, bool>, ping: bool) {
            if ping {
                ctx.schedule_in(SimDuration::from_secs(1), false);
            }
        }
        fn event_kind(event: &bool) -> &'static str {
            if *event {
                "ping"
            } else {
                "pong"
            }
        }
    }

    #[test]
    fn profile_counts_kinds_and_queue_depth() {
        let mut e = Engine::new(PingPong);
        for i in 0..5 {
            e.schedule_at(SimTime::from_secs(i), true);
        }
        e.run_until(SimTime::from_secs(100));
        let p = e.profile();
        assert_eq!(p.count("ping"), 5);
        assert_eq!(p.count("pong"), 5);
        assert_eq!(p.count("never"), 0);
        assert_eq!(p.total_dispatched(), 10);
        assert_eq!(p.total_dispatched(), e.events_processed());
        // All five pings were pending at the first dispatch.
        assert_eq!(p.queue_high_water, 5);
        // First-dispatch order is stable.
        let kinds: Vec<&str> = p.dispatches().iter().map(|&(k, _)| k).collect();
        assert_eq!(kinds, vec!["ping", "pong"]);
    }

    #[test]
    fn profile_tracks_hook_fires_and_wall_clock() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(5), 1);
        let mut hook = EveryTen { next: 10, fired: Vec::new() };
        e.run_until_hooked(SimTime::from_secs(35), &mut hook);
        let p = e.profile();
        assert_eq!(p.hook_fires, 3, "faults at 10, 20, 30");
        assert!(p.run_nanos > 0, "run wall-clock must accumulate");
        // The first dispatch is always sampled, so short runs still get a
        // handler-time estimate.
        assert!(p.handler_samples() >= 1);
    }

    #[test]
    fn handler_time_is_sampled_every_1024th_dispatch() {
        let mut e = Engine::new(SecondTicker);
        e.schedule_at(SimTime::ZERO, ());
        // Events fire at t = 0..=2999 (3000 dispatches), so dispatches
        // 0, 1024, and 2048 are sampled.
        e.run_until(SimTime::from_secs(3_000));
        let p = e.profile();
        assert_eq!(e.events_processed(), 3_000);
        assert_eq!(p.handler_samples(), 3);
        // The scaled estimate covers all dispatches, not just samples.
        assert!(p.handler_nanos() >= p.handler_samples());
    }

    #[test]
    fn empty_profile_reports_zero_handler_time() {
        let p = EngineProfile::default();
        assert_eq!(p.handler_samples(), 0);
        assert_eq!(p.handler_nanos(), 0);
    }

    #[test]
    fn recycled_queue_behaves_like_fresh_engine() {
        let mut e = Engine::with_event_capacity(Recorder::default(), 32);
        let mut ids = Vec::new();
        e.schedule_many((0..10u64).map(|i| (SimTime::from_secs(i + 1), i as u32)), &mut ids);
        assert_eq!(ids.len(), 10);
        assert!(e.world_mut().seen.is_empty());
        e.run_until(SimTime::from_secs(100));
        let (world, queue) = e.into_parts();
        assert_eq!(world.seen.len(), 10);
        let cap = queue.capacity();
        assert!(cap >= 10);

        // Second life: same allocations, clean slate.
        let mut e = Engine::new_with_queue(Recorder::default(), queue);
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.events_processed(), 0);
        e.schedule_at(SimTime::from_secs(3), 7);
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.world().seen, vec![(3, 7)]);
        let (_, queue) = e.into_parts();
        assert_eq!(queue.capacity(), cap, "recycling must not reallocate");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn schedule_many_rejects_past_events() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_secs(10), 1);
        e.run_until(SimTime::from_secs(100));
        let mut ids = Vec::new();
        e.schedule_many([(SimTime::from_secs(5), 2)], &mut ids);
    }

    #[test]
    fn default_event_kind_lumps_everything() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::ZERO, 1);
        e.schedule_at(SimTime::from_secs(1), 2);
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.profile().count("event"), 2);
    }

    #[test]
    fn sim_error_display_is_informative() {
        let s = SimError::Livelock { at: SimTime::ZERO, events: 7 }.to_string();
        assert!(s.contains("livelock"), "{s}");
        let s = SimError::EventStorm { day: 3, events: 9 }.to_string();
        assert!(s.contains("day 3"), "{s}");
    }
}
