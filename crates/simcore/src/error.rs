//! Model-construction errors shared across the toolkit.
//!
//! [`ModelError`] is the umbrella type layered crates (chaos plans,
//! scenario builders) return when *configuration* is invalid, wrapping the
//! substrate's own typed errors ([`ParamError`](crate::dist::ParamError),
//! [`QuantileError`](crate::quantile::QuantileError)) so callers can match
//! on one enum. Runtime misbehavior of a simulation is reported separately
//! as [`SimError`](crate::engine::SimError).

use crate::dist::ParamError;
use crate::quantile::QuantileError;

/// Why a model or plan could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A distribution parameter was rejected.
    Param(ParamError),
    /// A quantile target was rejected.
    Quantile(QuantileError),
    /// A rate or fraction was non-finite or negative.
    InvalidRate {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A required input collection was empty.
    Empty(&'static str),
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::Param(e) => write!(f, "invalid distribution parameter: {e}"),
            ModelError::Quantile(e) => write!(f, "invalid quantile target: {e}"),
            ModelError::InvalidRate { what, value } => {
                write!(f, "invalid rate for {what}: {value}")
            }
            ModelError::Empty(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<ParamError> for ModelError {
    fn from(e: ParamError) -> Self {
        ModelError::Param(e)
    }
}

impl From<QuantileError> for ModelError {
    fn from(e: QuantileError) -> Self {
        ModelError::Quantile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ModelError::InvalidRate { what: "storm rate", value: -1.0 };
        assert!(e.to_string().contains("storm rate"));
        assert!(ModelError::Empty("faults").to_string().contains("faults"));
        let q: ModelError = QuantileError::OutOfRange { q: 2.0 }.into();
        assert!(matches!(q, ModelError::Quantile(_)));
    }
}
