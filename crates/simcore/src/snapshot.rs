//! Binary snapshot substrate: versioned, checksummed, atomically written.
//!
//! A 50-year (or million-device) run that dies mid-flight should resume
//! from a checkpoint to the *same digest*, not restart from scratch. This
//! module provides the serde-free byte layer every checkpoint format in
//! the workspace builds on:
//!
//! * [`ByteWriter`] / [`ByteReader`] — little-endian primitive codecs
//!   with typed, panic-free error handling on the read side.
//! * [`seal`] / [`open`] — the framing contract: an 8-byte magic, a
//!   version byte, the payload, and a trailer carrying the payload length
//!   plus an FNV-1a checksum of everything before it. A torn or corrupted
//!   file is *detected and rejected* with a typed [`SnapshotError`],
//!   never silently loaded.
//! * [`write_atomic`] — temp file + fsync + rename, so a crash mid-write
//!   leaves either the old snapshot or a rejectable partial temp file,
//!   never a half-new snapshot under the real name.
//!
//! Format discipline: the magic and trailer layout are frozen; the
//! version byte gates payload evolution. Readers reject versions they do
//! not understand ([`SnapshotError::UnsupportedVersion`]) instead of
//! guessing. The golden-format regression test pins the header layout and
//! a fixed-seed snapshot checksum so accidental drift fails tier-1.

use core::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use crate::time::SimTime;

/// The frozen 8-byte file magic ("CENTSNAP").
pub const MAGIC: [u8; 8] = *b"CENTSNAP";

/// Bytes of framing around a payload: magic + version byte + trailer
/// (length `u64` + checksum `u64`).
pub const FRAME_BYTES: usize = MAGIC.len() + 1 + 16;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes` — the trailer checksum function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Everything that can go wrong writing, reading, or decoding a snapshot.
///
/// Load paths are fail-closed: every variant means "do not trust this
/// file"; none are recoverable by ignoring them.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem I/O failed (open, write, fsync, rename).
    Io(std::io::Error),
    /// The file is shorter than the fixed framing — a torn write.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The leading magic is not [`MAGIC`]: not a snapshot file.
    BadMagic,
    /// The version byte is newer (or older) than this reader supports.
    UnsupportedVersion {
        /// Version byte found in the file.
        found: u8,
        /// Version this reader supports.
        supported: u8,
    },
    /// The trailer's payload length disagrees with the file size — a
    /// truncated or padded file.
    LengthMismatch {
        /// Payload length the trailer claims.
        header: u64,
        /// Payload length actually present.
        actual: u64,
    },
    /// The trailer checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the file.
        computed: u64,
    },
    /// A decode ran past the end of the payload.
    Truncated {
        /// Bytes the decoder needed.
        wanted: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// The payload decoded but its contents are semantically invalid.
    Corrupt {
        /// What was wrong.
        what: &'static str,
    },
    /// The snapshot was taken under a different configuration than the
    /// one offered for resume.
    ConfigMismatch {
        /// Fingerprint stored in the snapshot.
        stored: u64,
        /// Fingerprint of the configuration offered.
        current: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::TooShort { len } => {
                write!(f, "snapshot file too short ({len} bytes): torn write")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this reader supports {supported})"
            ),
            SnapshotError::LengthMismatch { header, actual } => write!(
                f,
                "snapshot length mismatch: trailer claims {header} payload bytes, found {actual}"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            SnapshotError::Truncated { wanted, remaining } => write!(
                f,
                "snapshot payload truncated: decoder needed {wanted} bytes, {remaining} remain"
            ),
            SnapshotError::Corrupt { what } => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::ConfigMismatch { stored, current } => write!(
                f,
                "snapshot was taken under a different configuration \
                 (stored fingerprint {stored:016x}, offered {current:016x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Little-endian primitive encoder backing every snapshot payload.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter { buf: Vec::with_capacity(capacity) }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i128`, little-endian.
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a [`SimTime`] as its raw seconds.
    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_secs());
    }

    /// Appends an optional [`SimTime`]: a presence byte then the seconds.
    pub fn put_opt_time(&mut self, t: Option<SimTime>) {
        match t {
            Some(t) => {
                self.put_u8(1);
                self.put_time(t);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded payload so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive decoder. Every accessor is bounds-checked and
/// returns a typed error instead of panicking — load paths must fail
/// closed on any malformed input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { wanted: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0 or 1 is corrupt.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { what: "bool byte not 0 or 1" }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i128`.
    pub fn take_i128(&mut self) -> Result<i128, SnapshotError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(i128::from_le_bytes(a))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a [`SimTime`] from raw seconds.
    pub fn take_time(&mut self) -> Result<SimTime, SnapshotError> {
        Ok(SimTime::from_secs(self.take_u64()?))
    }

    /// Reads an optional [`SimTime`] (presence byte then seconds).
    pub fn take_opt_time(&mut self) -> Result<Option<SimTime>, SnapshotError> {
        Ok(if self.take_bool()? { Some(self.take_time()?) } else { None })
    }

    /// Reads a length-prefixed UTF-8 string. The length is validated
    /// against the remaining bytes before any allocation, so a corrupt
    /// length cannot trigger an outsized allocation.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.take_u64()? as usize;
        if len > self.remaining() {
            return Err(SnapshotError::Truncated { wanted: len, remaining: self.remaining() });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt { what: "string not valid UTF-8" })
    }

    /// Reads a length prefix for a repeated section, bounding it by
    /// `min_element_bytes` so a corrupt count cannot drive an outsized
    /// allocation or a long decode loop.
    pub fn take_count(&mut self, min_element_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.take_u64()? as usize;
        let floor = min_element_bytes.max(1);
        if n > self.remaining() / floor {
            return Err(SnapshotError::Corrupt { what: "repeat count exceeds payload size" });
        }
        Ok(n)
    }

    /// Succeeds only if every payload byte was consumed — trailing bytes
    /// mean the reader and writer disagree about the format.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt { what: "trailing bytes after payload" });
        }
        Ok(())
    }
}

/// Frames `payload` into a complete snapshot file image:
/// `MAGIC ∥ version ∥ payload ∥ len(payload) ∥ fnv1a(all preceding)`.
pub fn seal(version: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_BYTES);
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.extend_from_slice(payload);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Verifies a sealed snapshot image and returns `(version, payload)`.
///
/// Checks run outermost-first: framing size, magic, trailer length,
/// checksum, then version — so a torn file reports truncation rather
/// than a misleading content error.
///
/// # Errors
///
/// Any [`SnapshotError`] variant except `Io`/`Corrupt`/`ConfigMismatch`;
/// the caller decodes the payload (and may add those).
pub fn open(bytes: &[u8], supported_version: u8) -> Result<(u8, &[u8]), SnapshotError> {
    if bytes.len() < FRAME_BYTES {
        return Err(SnapshotError::TooShort { len: bytes.len() });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let payload_start = MAGIC.len() + 1;
    let trailer_start = bytes.len() - 16;
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[trailer_start..trailer_start + 8]);
    let stored_len = u64::from_le_bytes(a);
    let actual_len = (trailer_start - payload_start) as u64;
    if stored_len != actual_len {
        return Err(SnapshotError::LengthMismatch { header: stored_len, actual: actual_len });
    }
    a.copy_from_slice(&bytes[trailer_start + 8..]);
    let stored_sum = u64::from_le_bytes(a);
    let computed = fnv1a(&bytes[..trailer_start + 8]);
    if stored_sum != computed {
        return Err(SnapshotError::ChecksumMismatch { stored: stored_sum, computed });
    }
    let version = bytes[MAGIC.len()];
    if version != supported_version {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: supported_version,
        });
    }
    Ok((version, &bytes[payload_start..trailer_start]))
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written
/// and fsynced first, then renamed over `path`, then the parent
/// directory is fsynced so the rename itself is durable. A crash at any
/// point leaves either the previous snapshot intact or a stray `.tmp`
/// file that [`open`] rejects — never a half-written file under `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename durable. Directory fsync is a Linux-ism; if the
        // platform refuses to open a directory, the rename already hit
        // the journal on close and there is nothing more we can do.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and verifies a sealed snapshot file, returning `(version,
/// payload)` with the payload copied out.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure, plus every framing error
/// [`open`] can return.
pub fn read_verified(path: &Path, supported_version: u8) -> Result<(u8, Vec<u8>), SnapshotError> {
    let bytes = fs::read(path)?;
    let (version, payload) = open(&bytes, supported_version)?;
    Ok((version, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        w.put_str("hello");
        w.put_opt_time(Some(SimTime::from_secs(7)));
        w.put_opt_time(None);
        w.put_i128(-5);
        w.put_f64(1.5);
        w.put_bool(true);
        let sealed = seal(1, w.as_bytes());
        let (version, payload) = open(&sealed, 1).unwrap();
        assert_eq!(version, 1);
        let mut r = ByteReader::new(payload);
        assert_eq!(r.take_u64().unwrap(), 42);
        assert_eq!(r.take_str().unwrap(), "hello");
        assert_eq!(r.take_opt_time().unwrap(), Some(SimTime::from_secs(7)));
        assert_eq!(r.take_opt_time().unwrap(), None);
        assert_eq!(r.take_i128().unwrap(), -5);
        assert_eq!(r.take_f64().unwrap(), 1.5);
        assert!(r.take_bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_at_every_length_fails_closed() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_str("payload body");
        let sealed = seal(1, w.as_bytes());
        for cut in 0..sealed.len() {
            let torn = &sealed[..cut];
            assert!(open(torn, 1).is_err(), "torn at {cut} bytes must be rejected");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut w = ByteWriter::new();
        w.put_u64(0xdead_beef);
        let sealed = seal(1, w.as_bytes());
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(open(&bad, 1).is_err(), "flip at byte {i} must be rejected");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let sealed = seal(1, b"x");
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert!(matches!(open(&bad, 1), Err(SnapshotError::BadMagic)));
        // A *valid* file of a future version is rejected as unsupported.
        let future = seal(9, b"x");
        assert!(matches!(
            open(&future, 1),
            Err(SnapshotError::UnsupportedVersion { found: 9, supported: 1 })
        ));
    }

    #[test]
    fn reader_rejects_overrun_and_bad_counts() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.take_u64(), Err(SnapshotError::Truncated { .. })));
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // Absurd element count.
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_count(8), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("simcore-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let sealed = seal(1, b"abc");
        write_atomic(&path, &sealed).unwrap();
        let (v, payload) = read_verified(&path, 1).unwrap();
        assert_eq!((v, payload.as_slice()), (1, b"abc".as_slice()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
