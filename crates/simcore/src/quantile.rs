//! Streaming quantile estimation: the P² algorithm.
//!
//! Century-scale runs emit far too many samples to store for exact order
//! statistics. The P² algorithm (Jain & Chlamtac, 1985) tracks one
//! quantile with five markers updated in O(1) per observation, using
//! piecewise-parabolic interpolation — accurate to a fraction of a percent
//! for smooth distributions at any stream length.

/// Error returned by [`P2Quantile::new`] for an invalid target quantile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantileError {
    /// The requested quantile is not strictly inside `(0, 1)` (or not
    /// finite at all).
    OutOfRange {
        /// The rejected value.
        q: f64,
    },
}

impl core::fmt::Display for QuantileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuantileError::OutOfRange { q } => {
                write!(f, "quantile must be in (0,1), got {q}")
            }
        }
    }
}

impl std::error::Error for QuantileError {}

/// A single-quantile P² estimator.
///
/// # Examples
///
/// ```
/// use simcore::quantile::P2Quantile;
/// use simcore::rng::Rng;
///
/// let mut p50 = P2Quantile::new(0.5).unwrap();
/// let mut rng = Rng::seed_from(1);
/// for _ in 0..100_000 {
///     p50.add(rng.next_f64());
/// }
/// let est = p50.estimate().unwrap();
/// assert!((est - 0.5).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based, as in the paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen.
    count: usize,
    /// Initial observations buffered until five arrive.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile.
    ///
    /// Returns [`QuantileError::OutOfRange`] unless `0 < q < 1`.
    pub fn new(q: f64) -> Result<Self, QuantileError> {
        if !(q > 0.0 && q < 1.0) {
            return Err(QuantileError::OutOfRange { q });
        }
        Ok(P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                for (h, &v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = v;
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] = if self.heights[i - 1] < candidate
                    && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, s)
                };
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i])
    }

    /// The current estimate; `None` until five observations have arrived
    /// (before that, the exact small-sample quantile of the buffer is
    /// returned if at least one sample exists).
    pub fn estimate(&self) -> Option<f64> {
        if self.initial.len() < 5 {
            if self.initial.is_empty() {
                return None;
            }
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.total_cmp(b));
            let idx = ((v.len() - 1) as f64 * self.q).round() as usize;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }

    /// Observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The target quantile.
    pub fn q(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Normal};
    use crate::rng::Rng;

    #[test]
    fn uniform_median() {
        let mut est = P2Quantile::new(0.5).unwrap();
        let mut rng = Rng::seed_from(1);
        for _ in 0..200_000 {
            est.add(rng.next_f64());
        }
        let m = est.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.005, "median {m}");
        assert_eq!(est.count(), 200_000);
    }

    #[test]
    fn normal_p90() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut est = P2Quantile::new(0.9).unwrap();
        let mut rng = Rng::seed_from(2);
        for _ in 0..200_000 {
            est.add(d.sample(&mut rng));
        }
        // True P90 of N(10, 2) = 10 + 2 * 1.2816 = 12.563.
        let p90 = est.estimate().unwrap();
        assert!((p90 - 12.563).abs() < 0.05, "p90 {p90}");
    }

    #[test]
    fn exponential_p99_heavy_tail() {
        let d = Exponential::with_mean(1.0).unwrap();
        let mut est = P2Quantile::new(0.99).unwrap();
        let mut rng = Rng::seed_from(3);
        for _ in 0..400_000 {
            est.add(d.sample(&mut rng));
        }
        // True P99 = ln(100) = 4.605.
        let p99 = est.estimate().unwrap();
        assert!((p99 - 4.605).abs() < 0.15, "p99 {p99}");
    }

    #[test]
    fn small_sample_fallback() {
        let mut est = P2Quantile::new(0.5).unwrap();
        assert_eq!(est.estimate(), None);
        est.add(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.add(1.0);
        est.add(2.0);
        // Exact small-sample median of {1,2,3}.
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn ignores_non_finite() {
        let mut est = P2Quantile::new(0.5).unwrap();
        for x in [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, 4.0, 5.0] {
            est.add(x);
        }
        assert_eq!(est.count(), 5);
        assert_eq!(est.estimate(), Some(3.0));
    }

    #[test]
    fn tracks_sorted_input() {
        // Adversarial (sorted) input is the algorithm's weak spot; it
        // should still land in the right neighborhood.
        let mut est = P2Quantile::new(0.5).unwrap();
        for i in 0..100_001 {
            est.add(i as f64);
        }
        let m = est.estimate().unwrap();
        assert!((m - 50_000.0).abs() < 5_000.0, "median {m}");
    }

    #[test]
    fn rejects_bad_q_without_panicking() {
        for q in [0.0, 1.0, -0.5, 2.0, f64::NAN, f64::INFINITY] {
            match P2Quantile::new(q) {
                Err(QuantileError::OutOfRange { .. }) => {}
                other => panic!("q={q}: expected OutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_stream_estimate_is_none() {
        // Regression: estimating with zero observations must not panic.
        let est = P2Quantile::new(0.25).unwrap();
        assert_eq!(est.estimate(), None);
        assert_eq!(est.count(), 0);
    }

    #[test]
    fn error_display_names_the_value() {
        let e = QuantileError::OutOfRange { q: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }
}
