//! Online statistics: moments, histograms, quantiles, time-weighted means.
//!
//! Long simulations produce far too many samples to retain; everything here
//! is single-pass and O(1) or O(bins) in memory. Where exactness matters for
//! reports (medians of modest sample sets), [`Samples`] retains values and
//! computes exact order statistics.

use crate::time::{SimDuration, SimTime};

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use simcore::stats::Moments;
///
/// let mut m = Moments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.add(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1; 0 if fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "need lo < hi");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            // Float roundoff can land exactly on bins.len(); clamp.
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The inclusive-exclusive bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Exact sample store with order statistics, for modest sample counts
/// (per-run summaries, Monte-Carlo replicates).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    xs: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty store.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.xs.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns true if no observations were added.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between order
    /// statistics. Returns `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if !self.sorted {
            self.xs.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let pos = q * (self.xs.len() - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 < self.xs.len() {
            Some(self.xs[i] * (1.0 - frac) + self.xs[i + 1] * frac)
        } else {
            Some(self.xs[i])
        }
    }

    /// The median. Returns `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Read-only view of the raw samples (insertion or sorted order).
    pub fn values(&self) -> &[f64] {
        &self.xs
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. fraction of
/// fleet alive, instantaneous power draw).
///
/// Feed it `(time, new_value)` transitions; it integrates value·dt.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    t0: SimTime,
    last_t: SimTime,
    last_v: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Creates an accumulator starting at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted { t0, last_t: t0, last_v: v0, integral: 0.0 }
    }

    /// Records that the signal changed to `v` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the previous update.
    pub fn update(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        let dt = t.since(self.last_t).as_secs() as f64;
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// The integral of the signal over `[t0, t]` (value·seconds), closing
    /// the open segment at `t`.
    pub fn integral_until(&self, t: SimTime) -> f64 {
        debug_assert!(t >= self.last_t);
        self.integral + self.last_v * t.since(self.last_t).as_secs() as f64
    }

    /// The time-weighted mean over `[t0, t]`, closing the open segment at
    /// `t`. If the span is zero, returns the current value.
    pub fn mean_until(&self, t: SimTime) -> f64 {
        let span_secs = t.since(self.t0).as_secs();
        if span_secs == 0 {
            self.last_v
        } else {
            self.integral_until(t) / span_secs as f64
        }
    }

    /// Converts to the equivalent [`SimDuration`] of "value-seconds" if the
    /// signal is a 0/1 indicator (e.g. uptime).
    pub fn indicator_time_until(&self, t: SimTime) -> SimDuration {
        SimDuration::from_secs_f64(self.integral_until(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn moments_basic() {
        let mut m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        m.add(1.0);
        m.add(2.0);
        m.add(3.0);
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert!((m.sample_variance() - 1.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn moments_merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Moments::new();
        let mut a = Moments::new();
        let mut b = Moments::new();
        for (i, &x) in xs.iter().enumerate() {
            all.add(x);
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn moments_merge_with_empty() {
        let mut a = Moments::new();
        a.add(5.0);
        let b = Moments::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Moments::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-1.0);
        h.add(0.0);
        h.add(1.9);
        h.add(2.0);
        h.add(9.99);
        h.add(10.0);
        h.add(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn samples_quantiles() {
        let mut s = Samples::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.add(x);
        }
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.25), Some(2.0));
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn samples_interpolated_quantile() {
        let mut s = Samples::new();
        s.add(10.0);
        s.add(20.0);
        assert_eq!(s.median(), Some(15.0));
        assert_eq!(s.quantile(0.75), Some(17.5));
    }

    #[test]
    fn samples_empty() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn time_weighted_mean() {
        // Signal: 1.0 on [0, 10), 3.0 on [10, 20). Mean over [0, 20] = 2.0.
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(10), 3.0);
        let m = tw.mean_until(SimTime::from_secs(20));
        assert!((m - 2.0).abs() < 1e-12, "mean {m}");
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 7.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(5)), 7.0);
    }
}
