//! Deterministic random number generation with hierarchical stream splitting.
//!
//! Reproducibility is a first-class requirement for this toolkit: two runs
//! with the same seed must produce identical diaries, tables and figures,
//! across platforms and crate versions. We therefore implement the generator
//! in-tree rather than depending on an external RNG whose output could change
//! between releases.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna, 2018) seeded through
//! **SplitMix64**, the combination recommended by the xoshiro authors. On top
//! of it we add *stream splitting*: [`Rng::split`] derives an independent
//! child generator from a label, so each simulated entity (device #17, the
//! weather process, the maintenance crew) owns its own stream. Adding or
//! removing one entity then never perturbs the draws seen by another — the
//! property that makes common-random-number policy comparisons valid.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for label hashing; passes BigCrush on its own.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudorandom generator (xoshiro256\*\*).
///
/// # Examples
///
/// ```
/// use simcore::rng::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent per-entity streams:
/// let mut root = Rng::seed_from(42);
/// let mut dev0 = root.split("device", 0);
/// let mut dev1 = root.split("device", 1);
/// assert_ne!(dev0.next_u64(), dev1.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; (u >> 11) * 2^-53 is the canonical mapping.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where `ln(0)` must be avoided.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniform integer in `[0, n)` without modulo bias
    /// (Lemire's nearly-divisionless method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Derives an independent child generator from a string label and index.
    ///
    /// The child's seed material mixes this generator's state (without
    /// advancing it) with a hash of `(label, index)`, so:
    ///
    /// * the same parent always yields the same child for a given label;
    /// * distinct labels/indices yield decorrelated streams;
    /// * splitting does not consume parent randomness, so the parent's own
    ///   sequence is unaffected by how many children are split off.
    pub fn split(&self, label: &str, index: u64) -> Rng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis.
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm = self.s[0] ^ self.s[2].rotate_left(32) ^ h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// The generator's raw xoshiro256\*\* state, for checkpointing.
    ///
    /// Round-trips exactly through [`Rng::from_state`]: the restored
    /// generator continues the same stream draw for draw.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`].
    ///
    /// The all-zero state is a fixed point of xoshiro and can never be
    /// produced by a live generator; it is mapped to the same guard state
    /// [`Rng::seed_from`] would use, so no input panics.
    pub fn from_state(s: [u64; 4]) -> Rng {
        if s == [0, 0, 0, 0] {
            return Rng { s: [1, 0, 0, 0] };
        }
        Rng { s }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector() {
        // Regression pin: if the generator's output ever changes, every
        // recorded experiment changes. Freeze the first outputs for seed 0.
        let mut r = Rng::seed_from(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from(0);
        let v2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(v, v2);
        // Distinct consecutive outputs (sanity, not a randomness test).
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut r = Rng::seed_from(4);
        for _ in 0..10_000 {
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = Rng::seed_from(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.next_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        Rng::seed_from(0).next_below(0);
    }

    #[test]
    fn range_inclusive_hits_ends() {
        let mut r = Rng::seed_from(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match r.range_inclusive(10, 13) {
                10 => lo_seen = true,
                13 => hi_seen = true,
                11 | 12 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_correct() {
        let mut r = Rng::seed_from(9);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn split_is_stable_and_does_not_advance_parent() {
        let parent = Rng::seed_from(11);
        let c1 = parent.split("device", 3);
        let c2 = parent.split("device", 3);
        assert_eq!(c1, c2);
        let mut p1 = parent.clone();
        let mut p2 = parent.clone();
        let _ = p2.split("weather", 0);
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn split_streams_decorrelated() {
        let parent = Rng::seed_from(12);
        let mut a = parent.split("device", 0);
        let mut b = parent.split("device", 1);
        let mut c = parent.split("gateway", 0);
        let matches = (0..256)
            .filter(|_| {
                let x = a.next_u64();
                x == b.next_u64() || x == c.next_u64()
            })
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut r = Rng::seed_from(14);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut r = Rng::seed_from(15);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
