//! The structured event log — the simulated "experimental diary" of §4.5.
//!
//! The paper commits to a public, living diary of every intervention made to
//! keep the 50-year experiment alive. [`Diary`] is that artifact for
//! simulated runs: an append-only log of tagged entries with severity,
//! filterable and renderable as plain text.

use core::fmt;

use crate::time::SimTime;

/// How consequential a diary entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Routine observation (data arrived, cohort deployed).
    Info,
    /// Degradation that needs no immediate action (device offline, redundancy lost).
    Warning,
    /// An intervention or loss (gateway replaced, backhaul sunset, device stranded).
    Incident,
}

impl Severity {
    /// Stable one-byte encoding used by run digests; must never be
    /// renumbered (it would silently re-bless every golden trace).
    pub const fn code(self) -> u8 {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Incident => 2,
        }
    }
}

impl Severity {
    /// Decodes a [`code`](Severity::code) byte; `None` for unknown bytes
    /// (snapshot load paths must fail closed, not guess).
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Severity::Info),
            1 => Some(Severity::Warning),
            2 => Some(Severity::Incident),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Incident => "INCIDENT",
        };
        f.write_str(s)
    }
}

/// Which tier of the Figure-1 hierarchy an entry concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Edge devices.
    Device,
    /// Gateways.
    Gateway,
    /// Backhaul links and providers.
    Backhaul,
    /// The cloud/data endpoint.
    Cloud,
    /// Cross-cutting (policy changes, staffing, budget).
    System,
}

impl Tier {
    /// Stable one-byte encoding used by run digests; must never be
    /// renumbered (it would silently re-bless every golden trace).
    pub const fn code(self) -> u8 {
        match self {
            Tier::Device => 0,
            Tier::Gateway => 1,
            Tier::Backhaul => 2,
            Tier::Cloud => 3,
            Tier::System => 4,
        }
    }
}

impl Tier {
    /// Decodes a [`code`](Tier::code) byte; `None` for unknown bytes
    /// (snapshot load paths must fail closed, not guess).
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Tier::Device),
            1 => Some(Tier::Gateway),
            2 => Some(Tier::Backhaul),
            3 => Some(Tier::Cloud),
            4 => Some(Tier::System),
            _ => None,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tier::Device => "device",
            Tier::Gateway => "gateway",
            Tier::Backhaul => "backhaul",
            Tier::Cloud => "cloud",
            Tier::System => "system",
        };
        f.write_str(s)
    }
}

/// One diary entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// When it happened.
    pub at: SimTime,
    /// How consequential it is.
    pub severity: Severity,
    /// Which tier it concerns.
    pub tier: Tier,
    /// Human-readable description.
    pub message: String,
}

/// An append-only, time-ordered log of simulation happenings.
///
/// # Examples
///
/// ```
/// use simcore::trace::{Diary, Severity, Tier};
/// use simcore::time::SimTime;
///
/// let mut d = Diary::new();
/// d.log(SimTime::from_years(3), Severity::Incident, Tier::Gateway,
///       "gateway gw-0 SD card failed; replaced");
/// assert_eq!(d.count(Severity::Incident), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Diary {
    entries: Vec<Entry>,
}

impl Diary {
    /// Creates an empty diary.
    pub fn new() -> Self {
        Diary::default()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last entry — the diary
    /// mirrors simulation time, which only moves forward.
    pub fn log(
        &mut self,
        at: SimTime,
        severity: Severity,
        tier: Tier,
        message: impl Into<String>,
    ) {
        debug_assert!(
            self.entries.last().is_none_or(|e| at >= e.at),
            "diary entries must be time-ordered"
        );
        self.entries.push(Entry { at, severity, tier, message: message.into() });
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries at exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.entries.iter().filter(|e| e.severity == severity).count()
    }

    /// Number of entries for the given tier.
    pub fn count_tier(&self, tier: Tier) -> usize {
        self.entries.iter().filter(|e| e.tier == tier).count()
    }

    /// Iterator over entries at or above a severity.
    pub fn at_least(&self, severity: Severity) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(move |e| e.severity >= severity)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends another diary's entries (e.g. merging per-arm diaries),
    /// re-sorting by time with a stable sort so same-time entries keep their
    /// original relative order.
    pub fn merge(&mut self, other: &Diary) {
        self.entries.extend(other.entries.iter().cloned());
        self.entries.sort_by_key(|e| e.at);
    }

    /// Consuming counterpart of [`Diary::merge`]: moves `other`'s entries
    /// in without cloning, re-sorting by time. The sort is stable, so
    /// same-time entries keep `self`-before-`other` order and each
    /// diary's internal order — merging per-arm diaries is reproducible
    /// regardless of how many arms contributed.
    pub fn extend(&mut self, other: Diary) {
        self.entries.extend(other.entries);
        self.entries.sort_by_key(|e| e.at);
    }

    /// Renders the diary as plain text, one line per entry.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "[{}] {:8} {:8} {}", e.at, e.severity, e.tier, e.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_count() {
        let mut d = Diary::new();
        d.log(SimTime::ZERO, Severity::Info, Tier::Device, "deployed");
        d.log(SimTime::from_years(1), Severity::Warning, Tier::Device, "offline");
        d.log(SimTime::from_years(2), Severity::Incident, Tier::Backhaul, "sunset");
        assert_eq!(d.len(), 3);
        assert_eq!(d.count(Severity::Info), 1);
        assert_eq!(d.count(Severity::Incident), 1);
        assert_eq!(d.count_tier(Tier::Device), 2);
        assert_eq!(d.at_least(Severity::Warning).count(), 2);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Incident);
    }

    #[test]
    fn render_contains_fields() {
        let mut d = Diary::new();
        d.log(SimTime::from_years(5), Severity::Incident, Tier::Gateway, "gw replaced");
        let text = d.render();
        assert!(text.contains("INCIDENT"));
        assert!(text.contains("gateway"));
        assert!(text.contains("gw replaced"));
        assert!(text.contains("y005"));
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = Diary::new();
        a.log(SimTime::from_years(1), Severity::Info, Tier::Device, "a1");
        a.log(SimTime::from_years(3), Severity::Info, Tier::Device, "a3");
        let mut b = Diary::new();
        b.log(SimTime::from_years(2), Severity::Info, Tier::Cloud, "b2");
        a.merge(&b);
        let years: Vec<u64> = a.entries().iter().map(|e| e.at.year()).collect();
        assert_eq!(years, vec![1, 2, 3]);
    }

    #[test]
    fn extend_is_stable_across_per_arm_diaries() {
        // Three "arms" log at the same instants; after extend-merging, the
        // same-time entries must keep arm order (a, then b, then c) and
        // each arm's internal order — the property digests rely on.
        let t = SimTime::from_years(1);
        let mut a = Diary::new();
        a.log(t, Severity::Info, Tier::Device, "a-first");
        a.log(t, Severity::Info, Tier::Device, "a-second");
        let mut b = Diary::new();
        b.log(SimTime::ZERO, Severity::Info, Tier::Cloud, "b-early");
        b.log(t, Severity::Info, Tier::Cloud, "b-at-t");
        let mut c = Diary::new();
        c.log(t, Severity::Info, Tier::System, "c-at-t");
        a.extend(b);
        a.extend(c);
        let msgs: Vec<&str> = a.entries().iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["b-early", "a-first", "a-second", "b-at-t", "c-at-t"]);
    }

    #[test]
    fn extend_matches_merge() {
        let mut base1 = Diary::new();
        base1.log(SimTime::from_years(2), Severity::Warning, Tier::Device, "w");
        let mut base2 = base1.clone();
        let mut other = Diary::new();
        other.log(SimTime::from_years(1), Severity::Info, Tier::Gateway, "i");
        base1.merge(&other);
        base2.extend(other);
        assert_eq!(base1.render(), base2.render());
    }

    #[test]
    fn digest_codes_are_frozen() {
        // These byte values are part of the golden-digest contract.
        assert_eq!(
            [Severity::Info.code(), Severity::Warning.code(), Severity::Incident.code()],
            [0, 1, 2]
        );
        assert_eq!(
            [
                Tier::Device.code(),
                Tier::Gateway.code(),
                Tier::Backhaul.code(),
                Tier::Cloud.code(),
                Tier::System.code()
            ],
            [0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn empty_diary() {
        let d = Diary::new();
        assert!(d.is_empty());
        assert_eq!(d.render(), "");
    }
}
