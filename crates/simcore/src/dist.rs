//! Probability distributions over the deterministic [`crate::rng::Rng`].
//!
//! Every sampler is a small value type with an explicit, validated parameter
//! set and a `sample(&mut Rng)` method. The samplers used on hot paths
//! (exponential, Weibull, normal) use inverse-CDF or Box–Muller forms whose
//! output is a pure function of the consumed uniforms, keeping runs exactly
//! reproducible.
//!
//! The set covers what the higher layers need:
//!
//! * lifetimes and hazards — [`Exponential`], [`Weibull`], [`LogNormal`]
//! * measurement noise and service times — [`Normal`], [`Uniform`]
//! * event counts — [`Poisson`], [`Geometric`], [`Bernoulli`]
//! * heavy-tailed populations (AS sizes, hotspot ownership) — [`Zipf`],
//!   [`Pareto`]
//! * arbitrary categorical draws — [`Discrete`] (Walker alias table)

use crate::rng::Rng;

/// Error returned when distribution parameters are invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamError {
    what: &'static str,
}

impl ParamError {
    fn new(what: &'static str) -> Self {
        ParamError { what }
    }
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// Returns an error unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(ParamError::new("Uniform requires finite lo < hi"));
        }
        Ok(Uniform { lo, hi })
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }

    /// The distribution mean, `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p ∈ [0,1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new("Bernoulli requires p in [0,1]"));
        }
        Ok(Bernoulli { p })
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Rng) -> bool {
        rng.chance(self.p)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new("Exponential requires lambda > 0"));
        }
        Ok(Exponential { lambda })
    }

    /// Creates an exponential distribution with the given mean (`1/lambda`).
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError::new("Exponential requires mean > 0"));
        }
        Self::new(1.0 / mean)
    }

    /// Draws a sample by CDF inversion.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }

    /// The distribution mean, `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// The rate parameter `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// `k < 1` models infant mortality (decreasing hazard), `k = 1` is
/// exponential, `k > 1` models wear-out (increasing hazard) — the workhorse
/// of the `reliability` crate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0) {
            return Err(ParamError::new("Weibull requires shape > 0 and scale > 0"));
        }
        Ok(Weibull { shape, scale })
    }

    /// Draws a sample by CDF inversion: `scale * (-ln U)^(1/shape)`.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }

    /// The distribution mean, `scale * Γ(1 + 1/shape)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ` (the 63.2 % life).
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and std-dev `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
            return Err(ParamError::new("Normal requires finite mu, sigma >= 0"));
        }
        Ok(Normal { mu, sigma })
    }

    /// Draws a sample (Box–Muller, using both uniforms for one output so the
    /// sampler is stateless and draw-count deterministic).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// The standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// Draws a standard normal variate via Box–Muller (two uniforms per output).
pub fn standard_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Parameterized by the *underlying* normal, as is conventional. Use
/// [`LogNormal::from_mean_cv`] to specify the arithmetic mean and coefficient
/// of variation of the log-normal itself, which is usually what field data
/// (e.g. service times) report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }

    /// Creates a log-normal with the given arithmetic `mean > 0` and
    /// coefficient of variation `cv >= 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0 && cv.is_finite() && cv >= 0.0) {
            return Err(ParamError::new("LogNormal requires mean > 0 and cv >= 0"));
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.norm.sample(rng).exp()
    }

    /// The arithmetic mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.norm.mu + 0.5 * self.norm.sigma * self.norm.sigma).exp()
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Sampling uses Knuth's product method for `lambda < 30` and a normal
/// approximation with continuity correction above (adequate for the event
/// counts this toolkit draws, and draw-count bounded).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new("Poisson requires lambda > 0"));
        }
        Ok(Poisson { lambda })
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            x.round().max(0.0) as u64
        }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.lambda
    }
}

/// Geometric distribution: number of Bernoulli(`p`) failures before the
/// first success (support `0, 1, 2, …`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(ParamError::new("Geometric requires 0 < p <= 1"));
        }
        Ok(Geometric { p })
    }

    /// Draws a sample by inversion.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = rng.next_f64_open();
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }

    /// The distribution mean `(1-p)/p`.
    pub fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }
}

/// Pareto (type I) distribution with scale `x_min` and tail index `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, ParamError> {
        if !(x_min.is_finite() && x_min > 0.0 && alpha.is_finite() && alpha > 0.0) {
            return Err(ParamError::new("Pareto requires x_min > 0 and alpha > 0"));
        }
        Ok(Pareto { x_min, alpha })
    }

    /// Draws a sample by inversion.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// P(rank = k) ∝ 1/k^s. Sampling precomputes the CDF (O(n) memory) and draws
/// by binary search; populations here are at most a few hundred thousand.
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n >= 1` ranks with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("Zipf requires n >= 1"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError::new("Zipf requires finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Draws a 1-based rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        // Smallest rank whose cumulative probability exceeds `u`; an exact
        // boundary hit (measure zero) maps to that boundary's rank.
        let idx = self
            .cdf
            .binary_search_by(|c| c.total_cmp(&u))
            .unwrap_or_else(|i| i);
        (idx + 1).min(self.cdf.len())
    }

    /// The probability mass of the 1-based `rank`.
    ///
    /// Returns 0 for ranks outside `1..=n`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }

    /// Number of ranks `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Discrete distribution over `0..n` given unnormalized weights, sampled in
/// O(1) via Walker's alias method.
#[derive(Clone, Debug)]
pub struct Discrete {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Discrete {
    /// Builds an alias table from non-negative weights (not all zero).
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("Discrete requires at least one weight"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new("Discrete weights must be finite and >= 0"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("Discrete weights must not all be zero"));
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are 1 up to float error.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(Discrete { prob, alias })
    }

    /// Draws an index in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns true if there are no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

/// Empirical distribution: resamples from observed data with optional
/// linear interpolation between order statistics (a smoothed bootstrap).
#[derive(Clone, Debug)]
pub struct Empirical {
    sorted: Vec<f64>,
    interpolate: bool,
}

impl Empirical {
    /// Builds from observed samples (non-finite values rejected).
    pub fn new(samples: &[f64], interpolate: bool) -> Result<Self, ParamError> {
        if samples.is_empty() {
            return Err(ParamError::new("Empirical requires at least one sample"));
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(ParamError::new("Empirical samples must be finite"));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ok(Empirical { sorted, interpolate })
    }

    /// Draws a sample: a uniformly random observation, or (interpolating)
    /// the inverse empirical CDF at a uniform point.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if !self.interpolate || self.sorted.len() == 1 {
            return self.sorted[rng.next_below(self.sorted.len() as u64) as usize];
        }
        let u = rng.next_f64() * (self.sorted.len() - 1) as f64;
        let i = u.floor() as usize;
        let frac = u - i as f64;
        self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The observed mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

/// Binomial distribution: successes among `n` Bernoulli(`p`) trials.
///
/// This is the cohort-sampling primitive for population-level aggregate
/// simulation: instead of one draw per device per week, one binomial draw
/// yields a whole cohort's delivered-packet total. Sampling is exact
/// (per-trial) up to [`Binomial::EXACT_TRIALS`] trials and switches to a
/// clamped, rounded normal approximation above — the same approximation
/// the per-device weekly path has always used for its 168-report weeks,
/// so the aggregate path's totals match the legacy path's in
/// distribution. The output is a pure function of the consumed uniforms;
/// the moment properties are pinned by `tests/properties.rs`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Trial-count ceiling for the exact per-trial sampler; above it the
    /// normal approximation is used (`n·p·(1-p)` is then large enough for
    /// the CLT error to be far below the simulation's weekly granularity).
    pub const EXACT_TRIALS: u64 = 1024;

    /// Creates a binomial over `n` trials with success probability
    /// `p ∈ [0,1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new("Binomial requires p in [0,1]"));
        }
        Ok(Binomial { n, p })
    }

    /// Draws a sample in `[0, n]`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.n == 0 || self.p <= 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        if self.n <= Self::EXACT_TRIALS {
            let mut hits = 0;
            for _ in 0..self.n {
                if rng.chance(self.p) {
                    hits += 1;
                }
            }
            return hits;
        }
        let mean = self.n as f64 * self.p;
        let sd = (self.n as f64 * self.p * (1.0 - self.p)).sqrt();
        let z = standard_normal(rng);
        let x = (mean + sd * z).round();
        if x <= 0.0 {
            0
        } else if x >= self.n as f64 {
            self.n
        } else {
            x as u64
        }
    }

    /// The distribution mean, `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// The distribution variance, `n·p·(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

/// Draws `n` uniforms on `(0, 1)` **already sorted ascending**, in O(n),
/// via the exponential-spacings construction: if `E₁..E_{n+1}` are iid
/// Exp(1), then the normalized partial sums `(E₁+…+E_i)/(E₁+…+E_{n+1})`
/// are distributed exactly as the order statistics `U₍₁₎ ≤ … ≤ U₍ₙ₎` of
/// `n` independent uniforms. This is how aggregate mode pre-samples a
/// whole cohort's death times in one pass with no sort: map each sorted
/// uniform through an inverse lifetime CDF ([`InverseCdf`]) and the i-th
/// device receives the i-th order statistic.
pub fn sorted_uniforms(n: usize, rng: &mut Rng) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut acc = 0.0_f64;
    for _ in 0..n {
        acc += -rng.next_f64_open().ln();
        out.push(acc);
    }
    let total = acc + -rng.next_f64_open().ln();
    for u in &mut out {
        *u /= total;
    }
    out
}

/// A tabulated numeric inverse of a monotone CDF, for distributions with
/// no closed-form quantile (e.g. the bathtub lifetime, a product of three
/// component survivals).
///
/// Built once from the CDF evaluated on a uniform grid over
/// `[0, t_max]`; inversion is a binary search over the stored CDF values
/// plus linear interpolation between knots — O(log knots) per draw with
/// no further CDF evaluations, which is what makes million-device cohort
/// initialization cheap. The tabulation is an explicit approximation of
/// the source distribution (error vanishes as `knots` grows); every
/// sampling mode that uses a given table draws *identical* values from
/// identical uniforms, which is the equivalence the aggregate/reference
/// differential harness pins.
#[derive(Clone, Debug)]
pub struct InverseCdf {
    /// Knot abscissae `t_i` (uniform over `[0, t_max]`).
    ts: Vec<f64>,
    /// CDF values at the knots; non-decreasing, `cdf[0] = F(0)`.
    cdf: Vec<f64>,
}

impl InverseCdf {
    /// Tabulates `cdf` (a non-decreasing function with `F(0) ≥ 0`) on
    /// `knots + 1` uniform points over `[0, t_max]`.
    ///
    /// Returns an error for a degenerate range, fewer than 2 knots, or a
    /// tabulation that comes out non-finite or decreasing (a malformed
    /// CDF is a caller bug surfaced as a typed error, not garbage draws).
    pub fn tabulate(
        cdf: impl Fn(f64) -> f64,
        t_max: f64,
        knots: usize,
    ) -> Result<Self, ParamError> {
        if !(t_max.is_finite() && t_max > 0.0) {
            return Err(ParamError::new("InverseCdf requires finite t_max > 0"));
        }
        if knots < 2 {
            return Err(ParamError::new("InverseCdf requires at least 2 knots"));
        }
        let mut ts = Vec::with_capacity(knots + 1);
        let mut vals = Vec::with_capacity(knots + 1);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=knots {
            let t = t_max * (i as f64 / knots as f64);
            let f = cdf(t);
            if !f.is_finite() || f < last {
                return Err(ParamError::new("InverseCdf requires a finite non-decreasing CDF"));
            }
            last = f;
            ts.push(t);
            vals.push(f);
        }
        Ok(InverseCdf { ts, cdf: vals })
    }

    /// Maps a uniform `u ∈ [0, 1)` to the tabulated quantile `F⁻¹(u)`.
    ///
    /// `u` below the first knot's CDF value returns 0; `u` beyond the
    /// tabulated mass clamps to `t_max` (callers pick `t_max` past the
    /// horizon so the clamp only affects outcomes the simulation never
    /// observes).
    pub fn invert(&self, u: f64) -> f64 {
        let last = self.cdf.len() - 1;
        if u <= self.cdf[0] {
            return self.ts[0];
        }
        if u >= self.cdf[last] {
            return self.ts[last];
        }
        // First knot with cdf >= u; the predecessor exists by the guards.
        let hi = self.cdf.partition_point(|&f| f < u);
        let lo = hi - 1;
        let (f0, f1) = (self.cdf[lo], self.cdf[hi]);
        let span = f1 - f0;
        // Flat segments (span == 0) interpolate to the left knot.
        let frac = if span > 0.0 { (u - f0) / span } else { 0.0 };
        self.ts[lo] + frac * (self.ts[hi] - self.ts[lo])
    }

    /// The upper end of the tabulated support.
    pub fn t_max(&self) -> f64 {
        self.ts[self.ts.len() - 1]
    }
}

/// Lanczos approximation of the gamma function Γ(x) for `x > 0`.
///
/// Accurate to ~1e-13 over the range used here (Weibull means with shapes
/// between 0.3 and 10).
pub fn gamma(x: f64) -> f64 {
    // Lanczos g = 7, n = 9 coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        core::f64::consts::PI / ((core::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * core::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(1234)
    }

    fn sample_mean(mut f: impl FnMut(&mut Rng) -> f64, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 5.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..5.0).contains(&x));
        }
        let m = sample_mean(|r| d.sample(r), 50_000);
        assert!((m - 3.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn uniform_rejects_bad_params() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(7.0).unwrap();
        let m = sample_mean(|r| d.sample(r), 100_000);
        assert!((m - 7.0).abs() < 0.1, "mean {m}");
        assert!((d.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_memoryless_shape() {
        // P(X > 2m) should be about P(X > m)^2.
        let d = Exponential::with_mean(1.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let p1 = xs.iter().filter(|&&x| x > 1.0).count() as f64 / n as f64;
        let p2 = xs.iter().filter(|&&x| x > 2.0).count() as f64 / n as f64;
        assert!((p2 - p1 * p1).abs() < 0.01, "p1 {p1} p2 {p2}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 3.0).unwrap();
        assert!((w.mean() - 3.0).abs() < 1e-9);
        let m = sample_mean(|r| w.sample(r), 100_000);
        assert!((m - 3.0).abs() < 0.06, "mean {m}");
    }

    #[test]
    fn weibull_mean_gamma_form() {
        // shape 2 => mean = scale * Γ(1.5) = scale * sqrt(pi)/2.
        let w = Weibull::new(2.0, 10.0).unwrap();
        let expect = 10.0 * (core::f64::consts::PI).sqrt() / 2.0;
        assert!((w.mean() - expect).abs() < 1e-9);
        let m = sample_mean(|r| w.sample(r), 100_000);
        assert!((m - expect).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(-2.0, 3.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean + 2.0).abs() < 0.03, "mean {mean}");
        assert!((var - 9.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_from_mean_cv() {
        let d = LogNormal::from_mean_cv(20.0, 0.5).unwrap();
        assert!((d.mean() - 20.0).abs() < 1e-9);
        let m = sample_mean(|r| d.sample(r), 200_000);
        assert!((m - 20.0).abs() < 0.3, "mean {m}");
    }

    #[test]
    fn poisson_small_lambda() {
        let d = Poisson::new(3.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_normal_regime() {
        let d = Poisson::new(400.0).unwrap();
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 400.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn geometric_mean() {
        let d = Geometric::new(0.25).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut r), 0);
    }

    #[test]
    fn pareto_min_respected() {
        let d = Pareto::new(5.0, 2.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 5.0);
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut counts = vec![0usize; 101];
        for _ in 0..n {
            let k = z.sample(&mut r);
            assert!((1..=100).contains(&k));
            counts[k] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[4]);
        // Empirical share of rank 1 close to pmf(1).
        let share = counts[1] as f64 / n as f64;
        assert!((share - z.pmf(1)).abs() < 0.01, "share {share} pmf {}", z.pmf(1));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.3).unwrap();
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(51), 0.0);
    }

    #[test]
    fn discrete_alias_matches_weights() {
        let d = Discrete::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        let p2 = counts[2] as f64 / n as f64;
        assert!((p2 - 0.7).abs() < 0.01, "p2 {p2}");
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - 0.1).abs() < 0.01, "p0 {p0}");
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[0.0, 0.0]).is_err());
        assert!(Discrete::new(&[-1.0, 2.0]).is_err());
        assert!(Discrete::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn discrete_degenerate_single_category() {
        let d = Discrete::new(&[3.0]).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn empirical_resampling_preserves_support() {
        let data = [1.0, 5.0, 9.0];
        let d = Empirical::new(&data, false).unwrap();
        let mut r = rng();
        for _ in 0..1_000 {
            let x = d.sample(&mut r);
            assert!(data.contains(&x));
        }
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!((d.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_interpolation_fills_gaps() {
        let d = Empirical::new(&[0.0, 10.0], true).unwrap();
        let mut r = rng();
        let mut saw_interior = false;
        for _ in 0..1_000 {
            let x = d.sample(&mut r);
            assert!((0.0..=10.0).contains(&x));
            if x > 1.0 && x < 9.0 {
                saw_interior = true;
            }
        }
        assert!(saw_interior, "interpolation should produce interior values");
    }

    #[test]
    fn empirical_mean_matches_under_resampling() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Empirical::new(&data, true).unwrap();
        let m = sample_mean(|r| d.sample(r), 100_000);
        assert!((m - 49.5).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn empirical_rejects_bad_input() {
        assert!(Empirical::new(&[], false).is_err());
        assert!(Empirical::new(&[1.0, f64::NAN], false).is_err());
    }

    #[test]
    fn binomial_exact_regime_moments() {
        let d = Binomial::new(168, 0.95).unwrap();
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 0.05, "mean {mean} vs {}", d.mean());
        assert!((var - d.variance()).abs() < 0.3, "var {var} vs {}", d.variance());
    }

    #[test]
    fn binomial_normal_regime_moments() {
        let d = Binomial::new(100_000, 0.9).unwrap();
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 2.0, "mean {mean} vs {}", d.mean());
        for x in xs {
            assert!((0.0..=100_000.0).contains(&x));
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut r), 10);
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn binomial_deterministic_per_seed() {
        let d = Binomial::new(5000, 0.3).unwrap();
        let a: Vec<u64> = {
            let mut r = rng();
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sorted_uniforms_sorted_and_in_range() {
        let mut r = rng();
        let us = sorted_uniforms(1000, &mut r);
        assert_eq!(us.len(), 1000);
        for w in us.windows(2) {
            assert!(w[0] <= w[1], "not sorted: {} > {}", w[0], w[1]);
        }
        for &u in &us {
            assert!((0.0..1.0).contains(&u), "out of range: {u}");
        }
        assert!(sorted_uniforms(0, &mut r).is_empty());
    }

    #[test]
    fn sorted_uniforms_uniform_marginal() {
        // Mean of all order statistics pooled = 1/2; spacing between the
        // k-th order statistic mean and k/(n+1) is exact in expectation.
        let mut r = rng();
        let n = 2000;
        let reps = 200;
        let mut acc = vec![0.0; n];
        for _ in 0..reps {
            let us = sorted_uniforms(n, &mut r);
            for (a, u) in acc.iter_mut().zip(&us) {
                *a += u;
            }
        }
        let mid = acc[n / 2] / reps as f64;
        assert!((mid - 0.5).abs() < 0.02, "median order stat mean {mid}");
        let q1 = acc[n / 4] / reps as f64;
        assert!((q1 - 0.25).abs() < 0.02, "q1 order stat mean {q1}");
    }

    #[test]
    fn inverse_cdf_roundtrips_exponential() {
        // F(t) = 1 - exp(-t/10): invert tabulation vs the closed form.
        let table = InverseCdf::tabulate(|t| 1.0 - (-t / 10.0).exp(), 200.0, 4096).unwrap();
        for u in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let t = table.invert(u);
            let exact = -10.0 * (1.0 - u).ln();
            assert!((t - exact).abs() < 0.05, "u={u}: {t} vs {exact}");
        }
        assert_eq!(table.invert(0.0), 0.0);
        assert!((table.t_max() - 200.0).abs() < 1e-12);
        // Mass beyond the table clamps to t_max.
        assert!((table.invert(0.9999999999) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_cdf_rejects_malformed() {
        assert!(InverseCdf::tabulate(|t| t, 0.0, 10).is_err());
        assert!(InverseCdf::tabulate(|t| t, 10.0, 1).is_err());
        assert!(InverseCdf::tabulate(|t| -t, 10.0, 10).is_err());
        assert!(InverseCdf::tabulate(|_| f64::NAN, 10.0, 10).is_err());
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - core::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - core::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn param_error_displays() {
        let e = Uniform::new(1.0, 0.0).unwrap_err();
        assert!(e.to_string().contains("Uniform"));
    }
}
