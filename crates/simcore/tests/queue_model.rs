//! Differential tests: the timing-wheel [`EventQueue`] against a
//! reference binary-heap model.
//!
//! The wheel replaced a `BinaryHeap + HashSet` queue for throughput; its
//! one non-negotiable obligation is producing the **exact same pop
//! sequence** — earliest time first, FIFO on ties — under every
//! interleaving of schedule/cancel/pop, because run digests (and
//! therefore the golden suite) hang off that order. The reference model
//! here *is* the old implementation, and randomized interleavings
//! (equal-timestamp bursts, far-future times, behind-the-cursor
//! schedules, cancellations of live/fired/stale ids) must agree
//! operation by operation.
//!
//! Always on — no proptest feature gate — seeded through `simcore::rng`
//! so failures reproduce exactly.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::time::SimTime;

/// The pre-wheel queue, verbatim: max-heap inverted on `(at, seq)` with a
/// pending-set for tombstone cancellation.
struct RefEntry {
    at: SimTime,
    seq: u64,
    payload: u64,
}

impl Ord for RefEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for RefEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for RefEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for RefEntry {}

#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<RefEntry>,
    pending: HashSet<u64>,
    next_seq: u64,
}

impl RefQueue {
    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefEntry { at, seq, payload });
        self.pending.insert(seq);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq)
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.at, entry.payload));
            }
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// Drives both queues through `ops` random operations and asserts they
/// agree on every observable: pop results, cancel outcomes, peeked
/// times, and live counts.
fn differential_run(seed: u64, ops: usize) {
    let mut rng = Rng::seed_from(seed);
    let mut wheel = EventQueue::new();
    let mut model = RefQueue::default();
    // Parallel handle lists: entry i holds both queues' ids for the i-th
    // scheduled event, so a random cancel targets the same event in both.
    let mut ids = Vec::new();
    let mut model_ids = Vec::new();
    let mut now = 0u64; // Time of the last popped event.
    let mut last_scheduled = 0u64;
    let mut payload = 0u64;

    for step in 0..ops {
        match rng.next_below(10) {
            // Schedule (6/10), across four time profiles.
            0..=5 => {
                let at = match rng.next_below(10) {
                    // Near future: dense, lots of FIFO collisions.
                    0..=4 => now + rng.next_below(64),
                    // Equal-timestamp burst: repeat the previous time.
                    5 | 6 => last_scheduled,
                    // Behind the cursor (allowed on the raw queue).
                    7 => now.saturating_sub(rng.next_below(100)),
                    // Far future: decades out, up to the top wheel level.
                    _ => now.saturating_add(1 + rng.next_below(u64::MAX / 2)),
                };
                last_scheduled = at;
                payload += 1;
                ids.push(wheel.schedule(SimTime::from_secs(at), payload));
                model_ids.push(model.schedule(SimTime::from_secs(at), payload));
            }
            // Cancel a random id, live or not (5% of those stale).
            6 | 7 => {
                if !ids.is_empty() {
                    let pick = rng.next_below(ids.len() as u64) as usize;
                    assert_eq!(
                        wheel.cancel(ids[pick]),
                        model.cancel(model_ids[pick]),
                        "cancel divergence at step {step} (seed {seed})"
                    );
                }
            }
            // Pop.
            8 | 9 => {
                let got = wheel.pop();
                let want = model.pop();
                assert_eq!(got, want, "pop divergence at step {step} (seed {seed})");
                if let Some((at, _)) = got {
                    now = at.as_secs();
                }
            }
            _ => unreachable!("next_below(10)"),
        }
        if step % 64 == 0 {
            assert_eq!(wheel.peek_time(), model.peek_time(), "peek divergence at step {step}");
        }
        assert_eq!(wheel.len(), model.len(), "len divergence at step {step} (seed {seed})");
    }

    // Drain both to the end: the full residual sequence must match.
    loop {
        let got = wheel.pop();
        let want = model.pop();
        assert_eq!(got, want, "drain divergence (seed {seed})");
        if got.is_none() {
            break;
        }
    }
}

#[test]
fn wheel_matches_heap_model_across_seeds() {
    for seed in [1, 2, 3, 42, 1001] {
        differential_run(seed, 20_000);
    }
}

#[test]
fn wheel_matches_heap_model_under_heavy_cancellation() {
    // A cancel-heavy profile: schedule, then cancel most before popping —
    // the regime where the old queue accumulated tombstones.
    let mut rng = Rng::seed_from(7);
    let mut wheel = EventQueue::new();
    let mut model = RefQueue::default();
    let mut handles = Vec::new();
    for round in 0..50u64 {
        for i in 0..200 {
            let at = SimTime::from_secs(round * 1_000 + rng.next_below(5_000));
            let p = round * 1_000 + i;
            handles.push((wheel.schedule(at, p), model.schedule(at, p)));
        }
        // Cancel ~90% of everything ever scheduled (mostly stale later).
        for &(w, m) in &handles {
            if rng.chance(0.9) {
                assert_eq!(wheel.cancel(w), model.cancel(m));
            }
        }
        for _ in 0..20 {
            assert_eq!(wheel.pop(), model.pop());
        }
    }
    loop {
        let got = wheel.pop();
        assert_eq!(got, model.pop());
        if got.is_none() {
            break;
        }
    }
}

/// The regression the slab design exists for: cancelling 100k events must
/// physically shrink the wheel (no tombstones), leaving the next pop as
/// cheap as on a near-empty queue.
#[test]
fn mass_cancellation_keeps_pop_cheap() {
    let mut q = EventQueue::with_capacity(100_001);
    let ids: Vec<_> =
        (0..100_000u64).map(|i| q.schedule(SimTime::from_secs(1_000 + i % 4_096), i)).collect();
    let _sentinel = q.schedule(SimTime::from_secs(5), u64::MAX);
    let buckets_before = q.occupied_buckets();
    assert!(buckets_before > 16, "spread across many buckets: {buckets_before}");
    for id in ids {
        assert!(q.cancel(id));
    }
    // The wheel shrank with the cancellations: only the sentinel's bucket
    // remains occupied, so pop walks zero tombstones.
    assert_eq!(q.len(), 1);
    assert_eq!(q.occupied_buckets(), 1);
    assert_eq!(q.pop(), Some((SimTime::from_secs(5), u64::MAX)));
    assert_eq!(q.pop(), None);
    assert_eq!(q.occupied_buckets(), 0);
}
