//! Prepaid data-credit wallets (§4.4).
//!
//! The paper's Helium arm relies on a striking property: data, once
//! purchased, has a **fixed price** denominated in credits, so a device's
//! entire 50-year communication budget can be prepaid today. One 24-byte
//! packet costs one credit; a packet an hour for 50 years needs
//! `24 × 365 × 50 = 438,000` credits; a $5 wallet holds 500,000.
//!
//! [`Wallet`] models provisioning, per-packet burns, and exhaustion.

use simcore::time::{SimDuration, SimTime, HOUR};

use crate::money::Usd;

/// The maximum payload covered by a single data credit, per the paper.
pub const BYTES_PER_CREDIT: u32 = 24;

/// Paper pricing: $5 buys 500,000 credits ($0.00001 per credit).
pub fn paper_credit_price() -> Usd {
    Usd::from_dollars(5) / 500_000
}

/// Credits needed to send one packet of `payload_bytes`.
///
/// Every started 24-byte unit costs one credit; zero-byte packets still
/// consume one (the network bills per transmission).
pub fn credits_for_packet(payload_bytes: u32) -> u64 {
    if payload_bytes == 0 {
        1
    } else {
        payload_bytes.div_ceil(BYTES_PER_CREDIT) as u64
    }
}

/// Credits needed for one packet of `payload_bytes` every `interval` over
/// `horizon` (the paper's provisioning arithmetic: hourly 24-byte packets
/// over 50 years = 438,000 credits).
pub fn credits_for_schedule(
    payload_bytes: u32,
    interval: SimDuration,
    horizon: SimDuration,
) -> u64 {
    if interval.is_zero() {
        return 0;
    }
    let packets = horizon.as_secs() / interval.as_secs();
    packets * credits_for_packet(payload_bytes)
}

/// Error returned when a wallet cannot cover a burn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsufficientCredits {
    /// Credits the operation needed.
    pub needed: u64,
    /// Credits actually available.
    pub available: u64,
}

impl core::fmt::Display for InsufficientCredits {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "insufficient data credits: needed {}, available {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientCredits {}

/// A prepaid data-credit wallet dedicated to one device or deployment.
///
/// # Examples
///
/// ```
/// use econ::credits::{credits_for_schedule, Wallet};
/// use econ::money::Usd;
/// use simcore::time::{SimDuration, SimTime};
///
/// // The paper's provisioning: $5 -> 500,000 credits.
/// let mut w = Wallet::provision_dollars(Usd::from_dollars(5));
/// assert_eq!(w.balance(), 500_000);
///
/// // Hourly 24-byte packets for 50 years.
/// let need = credits_for_schedule(24, SimDuration::from_hours(1),
///                                 SimDuration::from_years(50));
/// assert_eq!(need, 438_000);
/// assert!(w.balance() >= need);
/// ```
#[derive(Clone, Debug)]
pub struct Wallet {
    balance: u64,
    burned: u64,
    funded: Usd,
    exhausted_at: Option<SimTime>,
}

impl Wallet {
    /// Creates a wallet holding `credits`.
    pub fn with_credits(credits: u64) -> Self {
        Wallet { balance: credits, burned: 0, funded: Usd::ZERO, exhausted_at: None }
    }

    /// Provisions a wallet by spending `amount` at the paper's fixed price
    /// ($0.00001/credit). Fractional credits are truncated.
    pub fn provision_dollars(amount: Usd) -> Self {
        let price = paper_credit_price();
        let credits = if amount.is_negative() {
            0
        } else {
            (amount.micros() / price.micros()) as u64
        };
        Wallet { balance: credits, burned: 0, funded: amount.max(Usd::ZERO), exhausted_at: None }
    }

    /// Remaining credits.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Credits burned so far.
    pub fn burned(&self) -> u64 {
        self.burned
    }

    /// Dollars originally spent funding the wallet.
    pub fn funded(&self) -> Usd {
        self.funded
    }

    /// When the wallet first failed to cover a burn, if ever.
    pub fn exhausted_at(&self) -> Option<SimTime> {
        self.exhausted_at
    }

    /// Burns credits for one packet of `payload_bytes` at time `now`.
    ///
    /// On failure records the exhaustion time (first failure only) and
    /// leaves the balance untouched.
    pub fn burn_packet(
        &mut self,
        now: SimTime,
        payload_bytes: u32,
    ) -> Result<(), InsufficientCredits> {
        let need = credits_for_packet(payload_bytes);
        if need > self.balance {
            if self.exhausted_at.is_none() {
                self.exhausted_at = Some(now);
            }
            return Err(InsufficientCredits { needed: need, available: self.balance });
        }
        self.balance -= need;
        self.burned += need;
        Ok(())
    }

    /// Burns credits for `count` identical packets of `payload_bytes` at
    /// time `now`, returning how many were paid for.
    ///
    /// Exactly equivalent to calling [`burn_packet`](Self::burn_packet)
    /// `count` times and stopping at the first failure — same final
    /// balance, same `burned` total, and `exhausted_at` is recorded at
    /// `now` iff fewer than `count` packets could be paid — but in O(1):
    /// one division instead of a loop. This is the weekly-delivery hot
    /// path; a 50-year fleet run burns millions of packets.
    pub fn burn_packets(&mut self, now: SimTime, payload_bytes: u32, count: u64) -> u64 {
        let need = credits_for_packet(payload_bytes);
        debug_assert!(need > 0, "every packet costs at least one credit");
        let paid = (self.balance / need).min(count);
        let spent = paid * need;
        self.balance -= spent;
        self.burned += spent;
        if paid < count && self.exhausted_at.is_none() {
            self.exhausted_at = Some(now);
        }
        paid
    }

    /// Tops the wallet up with `credits` more (a later re-provisioning
    /// intervention, which the diary should record).
    pub fn top_up(&mut self, credits: u64, cost: Usd) {
        self.balance += credits;
        self.funded += cost;
    }

    /// Chaos: a top-up failure empties the wallet (payment processor gone,
    /// account closed, operator forgot). Returns the credits lost;
    /// `exhausted_at` is recorded by the next failed burn as usual.
    pub fn drain(&mut self) -> u64 {
        std::mem::take(&mut self.balance)
    }

    /// The wallet's full mutable state `(balance, burned, funded,
    /// exhausted_at)`, for checkpointing. Round-trips exactly through
    /// [`Wallet::from_raw_state`].
    pub fn raw_state(&self) -> (u64, u64, Usd, Option<SimTime>) {
        (self.balance, self.burned, self.funded, self.exhausted_at)
    }

    /// Rebuilds a wallet from state captured by [`Wallet::raw_state`].
    pub fn from_raw_state(
        balance: u64,
        burned: u64,
        funded: Usd,
        exhausted_at: Option<SimTime>,
    ) -> Self {
        Wallet { balance, burned, funded, exhausted_at }
    }

    /// How long the current balance lasts at one `payload_bytes` packet per
    /// `interval`. Returns [`SimDuration::MAX`] for a zero burn rate.
    pub fn runway(&self, payload_bytes: u32, interval: SimDuration) -> SimDuration {
        let per = credits_for_packet(payload_bytes);
        if per == 0 || interval.is_zero() {
            return SimDuration::MAX;
        }
        let packets = self.balance / per;
        SimDuration::from_secs(packets.saturating_mul(interval.as_secs()))
    }
}

/// A struct-of-arrays column of per-device wallets: the federated arm's
/// whole credit population in four parallel vectors.
///
/// Semantically a `Vec<Wallet>` — every per-index operation replicates
/// [`Wallet`]'s arithmetic exactly (pinned by the oracle test below) —
/// but laid out column-wise so the weekly bulk-burn scan touches only
/// the `balance`/`burned` columns instead of striding over whole wallet
/// structs, and so a million-device arm provisions in one allocation
/// per column rather than a million heap objects.
#[derive(Clone, Debug, Default)]
pub struct WalletColumn {
    balance: Vec<u64>,
    burned: Vec<u64>,
    funded: Vec<Usd>,
    exhausted_at: Vec<Option<SimTime>>,
}

impl WalletColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Provisions `n` identical wallets, each funded with `amount` at the
    /// paper's fixed credit price (same arithmetic as
    /// [`Wallet::provision_dollars`]).
    pub fn provision_uniform(n: usize, amount: Usd) -> Self {
        let proto = Wallet::provision_dollars(amount);
        let (balance, burned, funded, exhausted) = proto.raw_state();
        WalletColumn {
            balance: vec![balance; n],
            burned: vec![burned; n],
            funded: vec![funded; n],
            exhausted_at: vec![exhausted; n],
        }
    }

    /// Number of wallets in the column.
    pub fn len(&self) -> usize {
        self.balance.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.balance.is_empty()
    }

    /// Materializes wallet `i` as a standalone [`Wallet`] (checkpointing
    /// and the per-device reference path). Returns `None` out of bounds.
    pub fn get(&self, i: usize) -> Option<Wallet> {
        Some(Wallet::from_raw_state(
            *self.balance.get(i)?,
            self.burned[i],
            self.funded[i],
            self.exhausted_at[i],
        ))
    }

    /// Overwrites wallet `i` from a standalone [`Wallet`] (device
    /// replacement re-provisioning and snapshot restore). Returns `false`
    /// out of bounds.
    pub fn set(&mut self, i: usize, wallet: &Wallet) -> bool {
        if i >= self.balance.len() {
            return false;
        }
        let (balance, burned, funded, exhausted) = wallet.raw_state();
        self.balance[i] = balance;
        self.burned[i] = burned;
        self.funded[i] = funded;
        self.exhausted_at[i] = exhausted;
        true
    }

    /// When wallet `i` first failed to cover a burn, if ever.
    pub fn exhausted_at(&self, i: usize) -> Option<SimTime> {
        self.exhausted_at.get(i).copied().flatten()
    }

    /// Burns credits from wallet `i` for `count` identical packets of
    /// `payload_bytes` at `now`, returning how many were paid for.
    ///
    /// Column-wise twin of [`Wallet::burn_packets`]: same division, same
    /// `burned` accounting, and `exhausted_at` records `now` iff fewer
    /// than `count` packets could be paid and no earlier exhaustion was
    /// recorded. Out-of-bounds indices pay nothing.
    pub fn burn_packets(&mut self, i: usize, now: SimTime, payload_bytes: u32, count: u64) -> u64 {
        let Some(balance) = self.balance.get_mut(i) else {
            return 0;
        };
        let need = credits_for_packet(payload_bytes);
        debug_assert!(need > 0, "every packet costs at least one credit");
        let paid = (*balance / need).min(count);
        let spent = paid * need;
        *balance -= spent;
        self.burned[i] += spent;
        if paid < count && self.exhausted_at[i].is_none() {
            self.exhausted_at[i] = Some(now);
        }
        paid
    }

    /// Chaos: empties wallet `i` (see [`Wallet::drain`]). Returns the
    /// credits lost; `None` out of bounds.
    pub fn drain(&mut self, i: usize) -> Option<u64> {
        self.balance.get_mut(i).map(std::mem::take)
    }
}

/// Total cost of buying credits **as you go**, yearly, with the credit's
/// dollar price escalating at `price_escalation` per year (the risk the
/// paper's prepayment eliminates: "the price of data once purchased is
/// fixed").
///
/// Returns the nominal dollars spent over `years` for `credits_per_year`
/// at an initial price of `initial_price` per credit.
pub fn pay_as_you_go_cost(
    credits_per_year: u64,
    initial_price: Usd,
    price_escalation: f64,
    years: u32,
) -> Usd {
    assert!(
        price_escalation.is_finite() && price_escalation > -1.0,
        "escalation must be finite and > -1"
    );
    let mut total = Usd::ZERO;
    let mut factor = 1.0;
    for _ in 0..years {
        total += (initial_price * credits_per_year as i64).scale(factor);
        factor *= 1.0 + price_escalation;
    }
    total
}

/// The prepayment advantage: `(prepaid, pay_as_you_go)` totals for the
/// paper's 50-year hourly schedule at a given yearly price escalation.
pub fn prepay_vs_payg(price_escalation: f64) -> (Usd, Usd) {
    let prepaid = paper::provisioned_cost();
    let yearly_credits = 24 * 365; // Hourly 24-B packets.
    let payg = pay_as_you_go_cost(
        yearly_credits,
        paper_credit_price(),
        price_escalation,
        50,
    );
    (prepaid, payg)
}

/// The paper's headline wallet arithmetic, kept as named constants for the
/// E8 exhibit.
pub mod paper {
    use super::*;

    /// Packets per hour in the paper's scenario.
    pub const PACKET_INTERVAL: SimDuration = SimDuration::from_secs(HOUR);

    /// Paper's stated 50-year credit need for one hourly device.
    pub const FIFTY_YEAR_CREDITS: u64 = 438_000;

    /// Paper's suggested conservative provisioning.
    pub const PROVISIONED_CREDITS: u64 = 500_000;

    /// Paper's cost for the provisioned wallet.
    pub fn provisioned_cost() -> Usd {
        Usd::from_dollars(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_credit_rounding() {
        assert_eq!(credits_for_packet(0), 1);
        assert_eq!(credits_for_packet(1), 1);
        assert_eq!(credits_for_packet(24), 1);
        assert_eq!(credits_for_packet(25), 2);
        assert_eq!(credits_for_packet(48), 2);
        assert_eq!(credits_for_packet(49), 3);
    }

    #[test]
    fn paper_fifty_year_arithmetic() {
        // 24 bytes hourly for 50 years: 24*365*50 packets = 438,000 credits.
        let need = credits_for_schedule(
            24,
            SimDuration::from_hours(1),
            SimDuration::from_years(50),
        );
        assert_eq!(need, paper::FIFTY_YEAR_CREDITS);
        // And the $5 wallet covers it with 62,000 credits of margin.
        let w = Wallet::provision_dollars(paper::provisioned_cost());
        assert_eq!(w.balance(), paper::PROVISIONED_CREDITS);
        assert!(w.balance() - need == 62_000);
    }

    #[test]
    fn provision_truncates_fractional_credits() {
        let w = Wallet::provision_dollars(Usd::from_micros(25));
        assert_eq!(w.balance(), 2); // 25 / 10 = 2.5 -> 2.
        let neg = Wallet::provision_dollars(Usd::from_dollars(-1));
        assert_eq!(neg.balance(), 0);
        assert_eq!(neg.funded(), Usd::ZERO);
    }

    #[test]
    fn burn_decrements_and_tracks() {
        let mut w = Wallet::with_credits(3);
        assert!(w.burn_packet(SimTime::ZERO, 24).is_ok());
        assert_eq!(w.balance(), 2);
        assert!(w.burn_packet(SimTime::ZERO, 40).is_ok()); // Needs 2, has 2.
        assert_eq!(w.balance(), 0);
        assert_eq!(w.burned(), 3);
    }

    #[test]
    fn burn_multi_credit_packet() {
        let mut w = Wallet::with_credits(3);
        assert!(w.burn_packet(SimTime::ZERO, 40).is_ok()); // 2 credits.
        assert_eq!(w.balance(), 1);
        assert_eq!(w.burned(), 2);
        let err = w.burn_packet(SimTime::from_secs(10), 40).unwrap_err();
        assert_eq!(err, InsufficientCredits { needed: 2, available: 1 });
        assert_eq!(w.balance(), 1, "failed burn must not deduct");
    }

    #[test]
    fn exhaustion_records_first_failure_time() {
        let mut w = Wallet::with_credits(1);
        assert!(w.burn_packet(SimTime::from_secs(5), 24).is_ok());
        assert_eq!(w.exhausted_at(), None);
        let t1 = SimTime::from_secs(10);
        assert!(w.burn_packet(t1, 24).is_err());
        assert!(w.burn_packet(SimTime::from_secs(20), 24).is_err());
        assert_eq!(w.exhausted_at(), Some(t1));
    }

    /// The loop `burn_packets` replaces, kept as the test oracle.
    fn burn_packets_loop(w: &mut Wallet, now: SimTime, payload_bytes: u32, count: u64) -> u64 {
        let mut paid = 0;
        for _ in 0..count {
            if w.burn_packet(now, payload_bytes).is_err() {
                break;
            }
            paid += 1;
        }
        paid
    }

    #[test]
    fn bulk_burn_matches_per_packet_loop() {
        // Cover: plenty of balance, exact fit, partial fit with a
        // multi-credit packet, already-exhausted, and zero count.
        let cases = [
            (500_000u64, 24u32, 168u64),
            (10, 24, 10),
            (7, 40, 5),   // 2 credits per packet, 3 paid, 1 left over.
            (0, 24, 4),
            (100, 24, 0), // Zero packets must not record exhaustion.
        ];
        for (credits, bytes, count) in cases {
            let mut bulk = Wallet::with_credits(credits);
            let mut looped = Wallet::with_credits(credits);
            let now = SimTime::from_secs(1_234);
            let paid_bulk = bulk.burn_packets(now, bytes, count);
            let paid_loop = burn_packets_loop(&mut looped, now, bytes, count);
            assert_eq!(paid_bulk, paid_loop, "case {credits}/{bytes}/{count}");
            assert_eq!(bulk.balance(), looped.balance());
            assert_eq!(bulk.burned(), looped.burned());
            assert_eq!(bulk.exhausted_at(), looped.exhausted_at());
        }
    }

    #[test]
    fn bulk_burn_records_first_exhaustion_only() {
        let mut w = Wallet::with_credits(3);
        let t1 = SimTime::from_secs(10);
        assert_eq!(w.burn_packets(t1, 24, 5), 3);
        assert_eq!(w.exhausted_at(), Some(t1));
        assert_eq!(w.burn_packets(SimTime::from_secs(20), 24, 5), 0);
        assert_eq!(w.exhausted_at(), Some(t1), "later failures keep the first time");
    }

    #[test]
    fn top_up_restores_service() {
        let mut w = Wallet::with_credits(0);
        assert!(w.burn_packet(SimTime::ZERO, 24).is_err());
        w.top_up(10, Usd::from_micros(100));
        assert!(w.burn_packet(SimTime::ZERO, 24).is_ok());
        assert_eq!(w.funded(), Usd::from_micros(100));
    }

    #[test]
    fn runway_matches_schedule() {
        let w = Wallet::with_credits(paper::PROVISIONED_CREDITS);
        let run = w.runway(24, SimDuration::from_hours(1));
        // 500,000 hourly packets ≈ 57.08 years.
        assert!((run.as_years_f64() - 57.077).abs() < 0.01, "{run}");
        assert_eq!(w.runway(24, SimDuration::ZERO), SimDuration::MAX);
    }

    #[test]
    fn schedule_with_zero_interval_is_zero() {
        assert_eq!(
            credits_for_schedule(24, SimDuration::ZERO, SimDuration::from_years(1)),
            0
        );
    }

    #[test]
    fn payg_flat_price_costs_the_used_credits_only() {
        // At zero escalation, paying as you go costs exactly the credits
        // used: 438,000 * $0.00001 = $4.38 — cheaper than the $5 wallet's
        // 62,000-credit margin.
        let (prepaid, payg) = prepay_vs_payg(0.0);
        assert_eq!(prepaid, Usd::from_dollars(5));
        assert_eq!(payg, Usd::from_cents(438));
    }

    #[test]
    fn escalation_makes_prepayment_win() {
        // At 5 %/yr credit-price escalation the 50-year bill balloons.
        let (prepaid, payg) = prepay_vs_payg(0.05);
        assert!(payg > prepaid * 3, "payg {payg} vs prepaid {prepaid}");
        // And the advantage is monotone in the escalation rate.
        let (_, payg_low) = prepay_vs_payg(0.02);
        assert!(payg > payg_low);
    }

    #[test]
    fn payg_arithmetic() {
        // 100 credits/yr at $0.01 for 3 years, 10% escalation:
        // 1.00 + 1.10 + 1.21 = $3.31.
        let total = pay_as_you_go_cost(100, Usd::from_cents(1), 0.10, 3);
        assert_eq!(total, Usd::from_cents(331));
        assert_eq!(pay_as_you_go_cost(100, Usd::from_cents(1), 0.10, 0), Usd::ZERO);
    }

    #[test]
    fn error_displays() {
        let e = InsufficientCredits { needed: 2, available: 1 };
        assert!(e.to_string().contains("needed 2"));
    }

    #[test]
    fn wallet_column_matches_vec_of_wallets_oracle() {
        // Drive a column and a Vec<Wallet> through an identical script of
        // burns, drains, and overwrites; every observable must agree.
        let n = 8;
        let amount = Usd::from_dollars(5);
        let mut col = WalletColumn::provision_uniform(n, amount);
        let mut oracle: Vec<Wallet> = (0..n).map(|_| Wallet::provision_dollars(amount)).collect();
        assert_eq!(col.len(), n);
        assert!(!col.is_empty());

        let script: &[(usize, u64, u32, u64)] = &[
            (0, 0, 24, 168),
            (1, 100, 40, 5),
            (2, 200, 24, 600_000), // Overdraw: partial pay + exhaustion.
            (2, 300, 24, 10),      // Already exhausted: keeps first time.
            (5, 400, 24, 0),       // Zero count: no-op, no exhaustion.
        ];
        for &(i, secs, bytes, count) in script {
            let now = SimTime::from_secs(secs);
            let a = col.burn_packets(i, now, bytes, count);
            let b = oracle[i].burn_packets(now, bytes, count);
            assert_eq!(a, b, "paid at {i}/{secs}");
        }
        assert_eq!(col.drain(3), Some(oracle[3].drain()));
        let fresh = Wallet::provision_dollars(amount);
        assert!(col.set(2, &fresh));
        oracle[2] = fresh.clone();

        for (i, w) in oracle.iter().enumerate() {
            let got = col.get(i).unwrap();
            assert_eq!(got.balance(), w.balance(), "balance {i}");
            assert_eq!(got.burned(), w.burned(), "burned {i}");
            assert_eq!(got.funded(), w.funded(), "funded {i}");
            assert_eq!(got.exhausted_at(), w.exhausted_at(), "exhausted {i}");
            assert_eq!(col.exhausted_at(i), w.exhausted_at());
        }
        // Out-of-bounds accesses are inert.
        assert_eq!(col.burn_packets(n, SimTime::ZERO, 24, 1), 0);
        assert_eq!(col.drain(n), None);
        assert!(!col.set(n, &fresh));
        assert!(col.get(n).is_none());
        assert_eq!(col.exhausted_at(n), None);
    }

    #[test]
    fn drain_empties_wallet_and_next_burn_records_exhaustion() {
        let mut w = Wallet::with_credits(10_000);
        let lost = w.drain();
        assert_eq!(lost, 10_000);
        assert_eq!(w.balance(), 0);
        assert!(w.exhausted_at().is_none(), "recorded only on failed burn");
        let now = SimTime::from_years(3);
        assert!(w.burn_packet(now, 24).is_err());
        assert_eq!(w.exhausted_at(), Some(now));
    }
}
