//! Capital/operating cost streams, amortization and net present value.
//!
//! §3.3–3.4 of the paper argue about infrastructure choices almost entirely
//! in these terms: fiber is capex-heavy but opex-light; cellular is the
//! reverse; trench costs amortize across co-deployed services; and the
//! vertical-integration decision is a crossover between two cost streams.
//! This module gives those arguments an executable form.

use simcore::time::{SimDuration, SimTime};

use crate::money::Usd;

/// A yearly cash-flow stream over a fixed horizon.
///
/// Index `y` holds the nominal cost paid during year `y` (year 0 is the
/// deployment year and typically carries the capex).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostStream {
    yearly: Vec<Usd>,
}

impl CostStream {
    /// Creates an all-zero stream spanning `years` years.
    pub fn zeros(years: usize) -> Self {
        CostStream { yearly: vec![Usd::ZERO; years] }
    }

    /// Creates a stream with an upfront payment in year 0 and a constant
    /// recurring payment in every year (including year 0).
    pub fn upfront_plus_recurring(upfront: Usd, recurring: Usd, years: usize) -> Self {
        let mut s = CostStream::zeros(years);
        if years > 0 {
            s.yearly[0] += upfront;
            for y in &mut s.yearly {
                *y += recurring;
            }
        }
        s
    }

    /// The horizon in years.
    pub fn years(&self) -> usize {
        self.yearly.len()
    }

    /// Adds `amount` to year `y`, growing the stream if needed.
    pub fn add(&mut self, y: usize, amount: Usd) {
        if y >= self.yearly.len() {
            self.yearly.resize(y + 1, Usd::ZERO);
        }
        self.yearly[y] += amount;
    }

    /// The nominal cost in year `y` (zero beyond the horizon).
    pub fn at(&self, y: usize) -> Usd {
        self.yearly.get(y).copied().unwrap_or(Usd::ZERO)
    }

    /// Element-wise sum of two streams (the longer horizon wins).
    pub fn plus(&self, other: &CostStream) -> CostStream {
        let n = self.yearly.len().max(other.yearly.len());
        let mut out = CostStream::zeros(n);
        for y in 0..n {
            out.yearly[y] = self.at(y) + other.at(y);
        }
        out
    }

    /// Total nominal (undiscounted) cost.
    pub fn total(&self) -> Usd {
        self.yearly.iter().copied().sum()
    }

    /// Cumulative nominal cost through the end of year `y` (inclusive).
    pub fn cumulative_through(&self, y: usize) -> Usd {
        self.yearly.iter().take(y + 1).copied().sum()
    }

    /// Net present value at a yearly `discount_rate` (e.g. `0.03`), with
    /// year-0 cash flows undiscounted.
    ///
    /// # Panics
    ///
    /// Panics if `discount_rate <= -1` (nonsensical) or not finite.
    pub fn npv(&self, discount_rate: f64) -> Usd {
        assert!(
            discount_rate.is_finite() && discount_rate > -1.0,
            "discount rate must be finite and > -1"
        );
        let mut acc = Usd::ZERO;
        let mut factor = 1.0;
        let denom = 1.0 + discount_rate;
        for &c in &self.yearly {
            acc += c.scale(factor);
            factor /= denom;
        }
        acc
    }

    /// Returns a copy with each year's cost escalated by a compounding
    /// yearly rate (cost inflation: labor, subscriptions). Year 0 is
    /// unescalated. Opex-heavy streams suffer more than capex-heavy ones —
    /// which sharpens the paper's fiber-vs-cellular argument.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite or <= -1.
    pub fn escalated(&self, rate: f64) -> CostStream {
        assert!(rate.is_finite() && rate > -1.0, "escalation rate must be finite and > -1");
        let mut out = CostStream::zeros(self.yearly.len());
        let mut factor = 1.0;
        for (y, &c) in self.yearly.iter().enumerate() {
            out.yearly[y] = c.scale(factor);
            factor *= 1.0 + rate;
        }
        out
    }

    /// The first year (if any) in which this stream's cumulative cost
    /// exceeds `other`'s — the crossover the paper's §3.3.2 predicts between
    /// cellular and fiber.
    pub fn crossover_year(&self, other: &CostStream) -> Option<usize> {
        let n = self.yearly.len().max(other.yearly.len());
        (0..n).find(|&y| self.cumulative_through(y) > other.cumulative_through(y))
    }
}

/// Straight-line amortization of a capital cost over an asset life,
/// optionally shared among `beneficiaries` co-funded services (§3.3.1's
/// trench-sharing argument).
///
/// Returns the per-year, per-beneficiary charge.
///
/// # Panics
///
/// Panics if `life_years == 0` or `beneficiaries == 0`.
pub fn amortize(capex: Usd, life_years: u32, beneficiaries: u32) -> Usd {
    assert!(life_years > 0, "asset life must be positive");
    assert!(beneficiaries > 0, "need at least one beneficiary");
    capex / (life_years as i64) / (beneficiaries as i64)
}

/// Converts a yearly cost into an equivalent cost per device-reading, given
/// a fleet size and per-device reporting interval.
pub fn cost_per_reading(
    yearly: Usd,
    devices: u64,
    report_interval: SimDuration,
) -> Usd {
    if devices == 0 || report_interval.is_zero() {
        return Usd::ZERO;
    }
    let readings_per_device =
        SimDuration::from_years(1).as_secs() / report_interval.as_secs();
    let total = (devices * readings_per_device.max(1)) as i64;
    yearly / total
}

/// A dated ledger of expenditures, for diary-style cost accounting inside
/// simulations.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    entries: Vec<(SimTime, &'static str, Usd)>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records an expenditure under a category label.
    pub fn charge(&mut self, at: SimTime, category: &'static str, amount: Usd) {
        self.entries.push((at, category, amount));
    }

    /// Total across all entries.
    pub fn total(&self) -> Usd {
        self.entries.iter().map(|&(_, _, a)| a).sum()
    }

    /// Total for one category.
    pub fn total_for(&self, category: &str) -> Usd {
        self.entries
            .iter()
            .filter(|&&(_, c, _)| c == category)
            .map(|&(_, _, a)| a)
            .sum()
    }

    /// Total spent strictly before `t`.
    pub fn total_before(&self, t: SimTime) -> Usd {
        self.entries
            .iter()
            .filter(|&&(at, _, _)| at < t)
            .map(|&(_, _, a)| a)
            .sum()
    }

    /// Collapses the ledger into a yearly [`CostStream`] over `years`.
    pub fn to_stream(&self, years: usize) -> CostStream {
        let mut s = CostStream::zeros(years);
        for &(at, _, amount) in &self.entries {
            let y = (at.year() as usize).min(years.saturating_sub(1));
            if years > 0 {
                s.add(y, amount);
            }
        }
        s
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(SimTime, &'static str, Usd)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upfront_plus_recurring_layout() {
        let s = CostStream::upfront_plus_recurring(
            Usd::from_dollars(1_000),
            Usd::from_dollars(10),
            3,
        );
        assert_eq!(s.at(0), Usd::from_dollars(1_010));
        assert_eq!(s.at(1), Usd::from_dollars(10));
        assert_eq!(s.at(2), Usd::from_dollars(10));
        assert_eq!(s.at(3), Usd::ZERO);
        assert_eq!(s.total(), Usd::from_dollars(1_030));
    }

    #[test]
    fn cumulative_and_crossover() {
        // Cellular: $0 upfront, $240/yr. Fiber: $2000 upfront, $20/yr.
        let cell = CostStream::upfront_plus_recurring(Usd::ZERO, Usd::from_dollars(240), 30);
        let fiber =
            CostStream::upfront_plus_recurring(Usd::from_dollars(2_000), Usd::from_dollars(20), 30);
        // Cellular passes fiber cumulatively when 240(y+1) > 2000 + 20(y+1)
        // -> y+1 > 9.09 -> year index 9.
        assert_eq!(cell.crossover_year(&fiber), Some(9));
        assert_eq!(fiber.crossover_year(&cell), Some(0));
    }

    #[test]
    fn crossover_none_when_always_cheaper() {
        let cheap = CostStream::upfront_plus_recurring(Usd::ZERO, Usd::from_dollars(1), 10);
        let dear = CostStream::upfront_plus_recurring(Usd::from_dollars(100), Usd::from_dollars(1), 10);
        assert_eq!(cheap.crossover_year(&dear), None);
    }

    #[test]
    fn npv_discounts_later_years() {
        let mut s = CostStream::zeros(2);
        s.add(0, Usd::from_dollars(100));
        s.add(1, Usd::from_dollars(100));
        let npv = s.npv(0.10);
        // 100 + 100/1.1 = 190.909...
        assert!((npv.dollars_f64() - 190.909_090).abs() < 0.001, "{npv}");
        // Zero rate equals nominal total.
        assert_eq!(s.npv(0.0), s.total());
    }

    #[test]
    #[should_panic(expected = "discount rate")]
    fn npv_rejects_bad_rate() {
        CostStream::zeros(1).npv(-2.0);
    }

    #[test]
    fn escalation_compounds_and_spares_year_zero() {
        let s = CostStream::upfront_plus_recurring(Usd::from_dollars(100), Usd::from_dollars(10), 3);
        let e = s.escalated(0.10);
        assert_eq!(e.at(0), Usd::from_dollars(110)); // Unescalated.
        assert_eq!(e.at(1), Usd::from_dollars(11));
        assert_eq!(e.at(2), Usd::from_micros(12_100_000)); // $12.10.
        // Zero rate is identity.
        assert_eq!(s.escalated(0.0), s);
    }

    #[test]
    fn escalation_hurts_opex_heavy_streams_more() {
        let capex = CostStream::upfront_plus_recurring(Usd::from_dollars(1_000), Usd::ZERO, 30);
        let opex = CostStream::upfront_plus_recurring(Usd::ZERO, Usd::from_dollars(40), 30);
        let growth = |s: &CostStream| {
            s.escalated(0.03).total().dollars_f64() / s.total().dollars_f64()
        };
        assert!((growth(&capex) - 1.0).abs() < 1e-9);
        assert!(growth(&opex) > 1.4);
    }

    #[test]
    #[should_panic(expected = "escalation")]
    fn escalation_rejects_bad_rate() {
        CostStream::zeros(1).escalated(f64::NAN);
    }

    #[test]
    fn plus_merges_different_horizons() {
        let mut a = CostStream::zeros(1);
        a.add(0, Usd::from_dollars(5));
        let mut b = CostStream::zeros(3);
        b.add(2, Usd::from_dollars(7));
        let c = a.plus(&b);
        assert_eq!(c.years(), 3);
        assert_eq!(c.at(0), Usd::from_dollars(5));
        assert_eq!(c.at(2), Usd::from_dollars(7));
    }

    #[test]
    fn add_grows_stream() {
        let mut s = CostStream::zeros(1);
        s.add(5, Usd::from_dollars(1));
        assert_eq!(s.years(), 6);
        assert_eq!(s.at(5), Usd::from_dollars(1));
    }

    #[test]
    fn amortize_splits_fairly() {
        // $1.2M trench over 40 years shared by 3 services = $10k/yr each.
        let per = amortize(Usd::from_dollars(1_200_000), 40, 3);
        assert_eq!(per, Usd::from_dollars(10_000));
    }

    #[test]
    #[should_panic(expected = "asset life")]
    fn amortize_zero_life_panics() {
        amortize(Usd::from_dollars(1), 0, 1);
    }

    #[test]
    fn cost_per_reading_math() {
        // $8,760/yr, one device reporting hourly -> $1 per reading.
        let c = cost_per_reading(Usd::from_dollars(8_760), 1, SimDuration::from_hours(1));
        assert_eq!(c, Usd::from_dollars(1));
        assert_eq!(
            cost_per_reading(Usd::from_dollars(1), 0, SimDuration::from_hours(1)),
            Usd::ZERO
        );
    }

    #[test]
    fn ledger_accounting() {
        let mut l = Ledger::new();
        l.charge(SimTime::from_years(0), "capex", Usd::from_dollars(100));
        l.charge(SimTime::from_years(2), "opex", Usd::from_dollars(10));
        l.charge(SimTime::from_years(2), "opex", Usd::from_dollars(10));
        assert_eq!(l.total(), Usd::from_dollars(120));
        assert_eq!(l.total_for("opex"), Usd::from_dollars(20));
        assert_eq!(l.total_before(SimTime::from_years(2)), Usd::from_dollars(100));
        let s = l.to_stream(5);
        assert_eq!(s.at(0), Usd::from_dollars(100));
        assert_eq!(s.at(2), Usd::from_dollars(20));
        assert_eq!(l.entries().len(), 3);
    }

    #[test]
    fn ledger_clamps_beyond_horizon() {
        let mut l = Ledger::new();
        l.charge(SimTime::from_years(10), "late", Usd::from_dollars(1));
        let s = l.to_stream(5);
        assert_eq!(s.at(4), Usd::from_dollars(1));
    }
}
