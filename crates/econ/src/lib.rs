//! `econ` — the economic substrate of the century toolkit.
//!
//! §3.3–3.4 and §4.4 of *Century-Scale Smart Infrastructure* (HotOS ’21)
//! argue with money: fiber-vs-cellular cost curves, trench-cost
//! amortization, the vertical-integration tipping point, prepaid data
//! credits, and the person-hour price of replacing a city's worth of
//! devices. This crate provides exact ledger arithmetic and those models:
//!
//! * [`money`] — fixed-point micro-dollar [`money::Usd`]; no float drift in
//!   century-long ledgers.
//! * [`cost`] — yearly [`cost::CostStream`]s, NPV, amortization, crossover
//!   detection, dated [`cost::Ledger`]s.
//! * [`credits`] — the Helium-style prepaid data-credit [`credits::Wallet`]
//!   with the paper's exact pricing.
//! * [`labor`] — person-hour accounting and the paper's LA recovery
//!   estimate.
//! * [`tipping`] — when owning infrastructure beats renting it.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod credits;
pub mod labor;
pub mod money;
pub mod tipping;

pub use cost::{CostStream, Ledger};
pub use credits::Wallet;
pub use labor::PersonHours;
pub use money::Usd;
