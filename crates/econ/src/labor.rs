//! Maintenance labor accounting (§1's person-hours argument).
//!
//! The paper's motivating arithmetic: Los Angeles has ~591,000 candidate
//! sensor mounts, and at "a very generous 20 minute total replacement
//! (including travel) time per device, recovering the deployment would
//! require nearly 200,000 person-hours of labor alone." This module makes
//! that estimate — and variations over crew sizes, service times, and
//! work calendars — computable.

use simcore::time::SimDuration;

use crate::money::Usd;

/// The paper's nominal per-device total replacement time (travel included).
pub const PAPER_MINUTES_PER_DEVICE: u64 = 20;

/// A stock of person-hours accumulated by maintenance activity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PersonHours(f64);

impl PersonHours {
    /// Zero effort.
    pub const ZERO: PersonHours = PersonHours(0.0);

    /// Creates from fractional hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or not finite.
    pub fn from_hours(hours: f64) -> Self {
        assert!(hours.is_finite() && hours >= 0.0, "person-hours must be finite and >= 0");
        PersonHours(hours)
    }

    /// Creates from a per-task duration times a task count.
    pub fn from_tasks(per_task: SimDuration, tasks: u64) -> Self {
        PersonHours(per_task.as_hours_f64() * tasks as f64)
    }

    /// Fractional hours.
    pub fn hours(self) -> f64 {
        self.0
    }

    /// Adds two effort amounts.
    pub fn plus(self, other: PersonHours) -> PersonHours {
        PersonHours(self.0 + other.0)
    }

    /// Labor cost at an hourly fully-burdened rate.
    pub fn cost(self, hourly_rate: Usd) -> Usd {
        hourly_rate.scale(self.0)
    }

    /// Wall-clock calendar time to complete with `workers` working
    /// `hours_per_day` each (e.g. a 10-person crew at 8 h/day).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `hours_per_day <= 0`.
    pub fn calendar_time(self, workers: u32, hours_per_day: f64) -> SimDuration {
        assert!(workers > 0, "need at least one worker");
        assert!(hours_per_day > 0.0, "need positive working hours");
        let days = self.0 / (workers as f64 * hours_per_day);
        SimDuration::from_secs_f64(days * 86_400.0)
    }
}

/// The paper's headline estimate: person-hours to visit and replace every
/// device in an asset census at a fixed per-device service time.
pub fn recovery_effort(total_devices: u64, per_device: SimDuration) -> PersonHours {
    PersonHours::from_tasks(per_device, total_devices)
}

/// Effort using the paper's nominal 20-minute figure.
pub fn recovery_effort_paper(total_devices: u64) -> PersonHours {
    recovery_effort(total_devices, SimDuration::from_mins(PAPER_MINUTES_PER_DEVICE))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's LA census (see `century::presets` for sources).
    const LA_DEVICES: u64 = 320_000 + 61_315 + 210_000;

    #[test]
    fn paper_headline_estimate() {
        // "nearly 200,000 person-hours" for 591,315 devices at 20 min each.
        let effort = recovery_effort_paper(LA_DEVICES);
        let hours = effort.hours();
        assert!((hours - 197_105.0).abs() < 1.0, "hours {hours}");
        assert!(hours > 190_000.0 && hours < 200_000.0);
    }

    #[test]
    fn from_tasks_matches_manual() {
        let e = PersonHours::from_tasks(SimDuration::from_mins(30), 4);
        assert!((e.hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cost_at_rate() {
        let e = PersonHours::from_hours(100.0);
        assert_eq!(e.cost(Usd::from_dollars(75)), Usd::from_dollars(7_500));
    }

    #[test]
    fn calendar_time_scales_with_crew() {
        let e = PersonHours::from_hours(800.0);
        let solo = e.calendar_time(1, 8.0);
        let crew = e.calendar_time(10, 8.0);
        assert!((solo.as_days_f64() - 100.0).abs() < 1e-9);
        assert!((crew.as_days_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn la_recovery_takes_decades_solo_years_for_crew() {
        // A 50-person crew at 8 h/day needs ~493 working days — consistent
        // with the paper's "intractable" framing for sudden replacement.
        let effort = recovery_effort_paper(LA_DEVICES);
        let crew50 = effort.calendar_time(50, 8.0);
        assert!(crew50.as_days_f64() > 400.0 && crew50.as_days_f64() < 600.0);
    }

    #[test]
    fn plus_accumulates() {
        let a = PersonHours::from_hours(1.5).plus(PersonHours::from_hours(2.5));
        assert!((a.hours() - 4.0).abs() < 1e-12);
        assert_eq!(PersonHours::ZERO.hours(), 0.0);
    }

    #[test]
    #[should_panic(expected = "person-hours")]
    fn negative_hours_panic() {
        PersonHours::from_hours(-1.0);
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_panic() {
        PersonHours::from_hours(1.0).calendar_time(0, 8.0);
    }
}
