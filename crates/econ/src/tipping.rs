//! The vertical-integration tipping point (§3.4).
//!
//! The paper's claim: *"there will always be a tipping point where the cost
//! of deploying vertically owned and managed infrastructure is lower than
//! the cost of replacing devices."* As a fleet grows, so does the cost of
//! replacing every device when third-party infrastructure disappears; owning
//! the infrastructure caps that exposure at the (fleet-size-independent)
//! build-out cost. This module computes where the crossover falls.

use crate::cost::CostStream;
use crate::money::Usd;

/// Parameters of the third-party (subscription) option.
#[derive(Clone, Copy, Debug)]
pub struct ThirdParty {
    /// Yearly subscription per device (e.g. data credits, SIM fees).
    pub per_device_yearly: Usd,
    /// Probability per year that the provider obsoletes its interface,
    /// forcing whole-fleet device replacement (§3.4's 2G-sunset risk).
    pub sunset_rate_per_year: f64,
    /// Cost of replacing one stranded device (hardware + truck roll).
    pub replacement_per_device: Usd,
}

/// Parameters of the owned-infrastructure option.
#[derive(Clone, Copy, Debug)]
pub struct Owned {
    /// One-time build-out cost (gateways + backhaul), fleet-size independent
    /// to first order.
    pub buildout: Usd,
    /// Yearly operations cost (staff, power, repair).
    pub yearly_ops: Usd,
    /// Extra yearly cost per device (marginal gateway capacity).
    pub per_device_yearly: Usd,
}

/// Expected yearly cost streams for both options at a given fleet size.
///
/// The third-party stream charges subscriptions each year plus the
/// *expected* fleet-replacement cost `sunset_rate × fleet × replacement`.
/// The owned stream pays build-out in year 0 and operations every year.
pub fn cost_streams(
    third: &ThirdParty,
    owned: &Owned,
    fleet: u64,
    horizon_years: usize,
) -> (CostStream, CostStream) {
    let fleet_i = fleet as i64;
    let sub = third.per_device_yearly * fleet_i;
    let expected_strand = (third.replacement_per_device * fleet_i).scale(third.sunset_rate_per_year);
    let third_stream =
        CostStream::upfront_plus_recurring(Usd::ZERO, sub + expected_strand, horizon_years);
    let owned_recurring = owned.yearly_ops + owned.per_device_yearly * fleet_i;
    let owned_stream =
        CostStream::upfront_plus_recurring(owned.buildout, owned_recurring, horizon_years);
    (third_stream, owned_stream)
}

/// Result of a tipping-point search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TippingPoint {
    /// Smallest fleet size at which owning wins over the horizon.
    pub fleet: u64,
}

/// Finds the smallest fleet size in `[1, max_fleet]` for which the owned
/// option's total cost over `horizon_years` is at most the third-party
/// option's, by binary search (the cost gap is monotone in fleet size as
/// long as the third-party marginal cost exceeds the owned marginal cost).
///
/// Returns `None` if owning never wins within `max_fleet`.
pub fn tipping_fleet_size(
    third: &ThirdParty,
    owned: &Owned,
    horizon_years: usize,
    max_fleet: u64,
) -> Option<TippingPoint> {
    let owned_wins = |fleet: u64| {
        let (t, o) = cost_streams(third, owned, fleet, horizon_years);
        o.total() <= t.total()
    };
    if !owned_wins(max_fleet) {
        return None;
    }
    let (mut lo, mut hi) = (1u64, max_fleet);
    if owned_wins(lo) {
        return Some(TippingPoint { fleet: lo });
    }
    // Invariant: !owned_wins(lo) && owned_wins(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if owned_wins(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(TippingPoint { fleet: hi })
}

/// For a fixed fleet, the first year in which cumulative third-party spend
/// exceeds cumulative owned spend (`None` if it never does within the
/// horizon) — "when should we have built our own?".
pub fn tipping_year(
    third: &ThirdParty,
    owned: &Owned,
    fleet: u64,
    horizon_years: usize,
) -> Option<usize> {
    let (t, o) = cost_streams(third, owned, fleet, horizon_years);
    t.crossover_year(&o)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn third() -> ThirdParty {
        ThirdParty {
            per_device_yearly: Usd::from_dollars(12),
            sunset_rate_per_year: 0.05,
            replacement_per_device: Usd::from_dollars(100),
        }
    }

    fn owned() -> Owned {
        Owned {
            buildout: Usd::from_dollars(500_000),
            yearly_ops: Usd::from_dollars(50_000),
            per_device_yearly: Usd::from_dollars(1),
        }
    }

    #[test]
    fn streams_have_expected_shape() {
        let (t, o) = cost_streams(&third(), &owned(), 1_000, 10);
        // Third-party: (12 + 0.05*100) * 1000 = $17k/yr, no upfront.
        assert_eq!(t.at(0), Usd::from_dollars(17_000));
        assert_eq!(t.at(9), Usd::from_dollars(17_000));
        // Owned: $500k + $51k in year 0; $51k after.
        assert_eq!(o.at(0), Usd::from_dollars(551_000));
        assert_eq!(o.at(5), Usd::from_dollars(51_000));
    }

    #[test]
    fn tipping_exists_for_large_fleets() {
        // Gap per device-year = 17 - 1 = $16. Over 50 years the owned fixed
        // cost is 500k + 50*50k = $3.0M, so tipping fleet ≈ 3.0M/(16*50) = 3750.
        let tp = tipping_fleet_size(&third(), &owned(), 50, 1_000_000).expect("tips");
        assert!(tp.fleet >= 3_700 && tp.fleet <= 3_800, "fleet {}", tp.fleet);
        // Verify minimality: one device fewer and owning loses.
        let (t, o) = cost_streams(&third(), &owned(), tp.fleet - 1, 50);
        assert!(o.total() > t.total());
        let (t, o) = cost_streams(&third(), &owned(), tp.fleet, 50);
        assert!(o.total() <= t.total());
    }

    #[test]
    fn no_tipping_when_fleet_capped_small() {
        assert_eq!(tipping_fleet_size(&third(), &owned(), 50, 100), None);
    }

    #[test]
    fn tipping_immediately_for_huge_marginal_gap() {
        let t = ThirdParty {
            per_device_yearly: Usd::from_dollars(1_000_000),
            sunset_rate_per_year: 0.0,
            replacement_per_device: Usd::ZERO,
        };
        let o = Owned {
            buildout: Usd::from_dollars(10),
            yearly_ops: Usd::ZERO,
            per_device_yearly: Usd::ZERO,
        };
        let tp = tipping_fleet_size(&t, &o, 1, 10).unwrap();
        assert_eq!(tp.fleet, 1);
    }

    #[test]
    fn tipping_year_for_fixed_fleet() {
        // At 10k devices: third-party $170k/yr vs owned $551k year 0 then
        // $60k/yr. Cumulative crossover when 170k(y+1) > 500k + 60k(y+1)
        // -> y+1 > 4.54 -> year 4.
        let y = tipping_year(&third(), &owned(), 10_000, 50).unwrap();
        assert_eq!(y, 4);
    }

    #[test]
    fn tipping_year_none_for_tiny_fleet() {
        assert_eq!(tipping_year(&third(), &owned(), 10, 50), None);
    }

    #[test]
    fn sunset_risk_moves_tipping_point() {
        // Higher sunset risk should lower the tipping fleet size.
        let risky = ThirdParty { sunset_rate_per_year: 0.25, ..third() };
        let base = tipping_fleet_size(&third(), &owned(), 50, 1_000_000).unwrap();
        let with_risk = tipping_fleet_size(&risky, &owned(), 50, 1_000_000).unwrap();
        assert!(with_risk.fleet < base.fleet);
    }
}
