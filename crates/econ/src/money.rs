//! Fixed-point money arithmetic.
//!
//! Century-long cost ledgers must not drift: adding a $0.00001-per-packet
//! data-credit burn 438,000 times has to produce an exact total. [`Usd`]
//! stores **micro-dollars** (1e-6 USD) in an `i128`, which covers ±1.7e23
//! dollars — more than any municipal budget — while representing the paper's
//! $5-per-500,000-credit price ($0.00001/credit = 10 micro-dollars) exactly.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Micro-dollars per dollar.
const MICRO: i128 = 1_000_000;

/// An exact USD amount in micro-dollars.
///
/// # Examples
///
/// ```
/// use econ::money::Usd;
///
/// let credit_price = Usd::from_dollars(5) / 500_000; // $5 per 500k credits.
/// assert_eq!(credit_price, Usd::from_micros(10));
/// assert_eq!(credit_price * 438_000, Usd::from_dollars_f64(4.38));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Usd(i128);

impl Usd {
    /// Zero dollars.
    pub const ZERO: Usd = Usd(0);

    /// Creates an amount from whole dollars.
    pub const fn from_dollars(d: i64) -> Usd {
        Usd(d as i128 * MICRO)
    }

    /// Creates an amount from whole cents.
    pub const fn from_cents(c: i64) -> Usd {
        Usd(c as i128 * (MICRO / 100))
    }

    /// Creates an amount from micro-dollars.
    pub const fn from_micros(u: i128) -> Usd {
        Usd(u)
    }

    /// Creates an amount from fractional dollars, rounding to the nearest
    /// micro-dollar (ties away from zero).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not finite.
    pub fn from_dollars_f64(d: f64) -> Usd {
        assert!(d.is_finite(), "money must be finite");
        Usd((d * MICRO as f64).round() as i128)
    }

    /// The amount in micro-dollars.
    pub const fn micros(self) -> i128 {
        self.0
    }

    /// The amount in fractional dollars (lossy above 2^53 micro-dollars).
    pub fn dollars_f64(self) -> f64 {
        self.0 as f64 / MICRO as f64
    }

    /// Returns true if the amount is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns true if the amount is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// The absolute value.
    pub const fn abs(self) -> Usd {
        Usd(self.0.abs())
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Usd) -> Option<Usd> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Usd(v)),
            None => None,
        }
    }

    /// Multiplies by a float factor (e.g. a discount factor), rounding to
    /// the nearest micro-dollar. Use only where the factor is inherently
    /// approximate; ledger math should stay in integer ops.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite.
    pub fn scale(self, k: f64) -> Usd {
        assert!(k.is_finite(), "scale factor must be finite");
        Usd((self.0 as f64 * k).round() as i128)
    }

    /// The larger of two amounts.
    pub fn max(self, other: Usd) -> Usd {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Usd) -> Usd {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Usd {
    type Output = Usd;
    fn add(self, rhs: Usd) -> Usd {
        Usd(self.0 + rhs.0)
    }
}

impl AddAssign for Usd {
    fn add_assign(&mut self, rhs: Usd) {
        self.0 += rhs.0;
    }
}

impl Sub for Usd {
    type Output = Usd;
    fn sub(self, rhs: Usd) -> Usd {
        Usd(self.0 - rhs.0)
    }
}

impl SubAssign for Usd {
    fn sub_assign(&mut self, rhs: Usd) {
        self.0 -= rhs.0;
    }
}

impl Neg for Usd {
    type Output = Usd;
    fn neg(self) -> Usd {
        Usd(-self.0)
    }
}

impl Mul<i64> for Usd {
    type Output = Usd;
    fn mul(self, rhs: i64) -> Usd {
        Usd(self.0 * rhs as i128)
    }
}

impl Div<i64> for Usd {
    /// Integer division toward zero, in micro-dollars.
    type Output = Usd;
    fn div(self, rhs: i64) -> Usd {
        Usd(self.0 / rhs as i128)
    }
}

impl Sum for Usd {
    fn sum<I: Iterator<Item = Usd>>(iter: I) -> Usd {
        iter.fold(Usd::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Usd {
    /// Formats as `$1,234.56` (negative as `-$…`), rounding to cents.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let neg = self.0 < 0;
        let abs = self.0.unsigned_abs();
        // Round micro-dollars to cents (half away from zero).
        let cents = (abs + 5_000) / 10_000;
        let dollars = cents / 100;
        let rem = cents % 100;
        let mut digits = dollars.to_string();
        // Insert thousands separators.
        let mut grouped = String::new();
        let bytes = digits.as_bytes();
        for (i, b) in bytes.iter().enumerate() {
            if i > 0 && (bytes.len() - i).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(*b as char);
        }
        digits = grouped;
        if neg {
            write!(f, "-${digits}.{rem:02}")
        } else {
            write!(f, "${digits}.{rem:02}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Usd::from_dollars(1), Usd::from_cents(100));
        assert_eq!(Usd::from_cents(1), Usd::from_micros(10_000));
        assert_eq!(Usd::from_dollars_f64(1.5), Usd::from_cents(150));
    }

    #[test]
    fn paper_credit_price_is_exact() {
        // $5 buys 500,000 data credits -> $0.00001 = 10 micro-dollars each.
        let per_credit = Usd::from_dollars(5) / 500_000;
        assert_eq!(per_credit.micros(), 10);
        // 438,000 credits cost exactly $4.38.
        let fifty_years = per_credit * 438_000;
        assert_eq!(fifty_years, Usd::from_cents(438));
    }

    #[test]
    fn arithmetic() {
        let a = Usd::from_dollars(10);
        let b = Usd::from_cents(250);
        assert_eq!(a + b, Usd::from_cents(1_250));
        assert_eq!(a - b, Usd::from_cents(750));
        assert_eq!(-b, Usd::from_cents(-250));
        assert_eq!(b * 4, Usd::from_dollars(10));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_and_predicates() {
        let total: Usd = [Usd::from_dollars(1), Usd::from_dollars(2)].into_iter().sum();
        assert_eq!(total, Usd::from_dollars(3));
        assert!(Usd::ZERO.is_zero());
        assert!(Usd::from_dollars(-1).is_negative());
        assert_eq!(Usd::from_dollars(-1).abs(), Usd::from_dollars(1));
    }

    #[test]
    fn scale_rounds() {
        let a = Usd::from_dollars(100);
        assert_eq!(a.scale(0.5), Usd::from_dollars(50));
        assert_eq!(a.scale(1.0 / 3.0), Usd::from_micros(33_333_333));
    }

    #[test]
    fn min_max() {
        let a = Usd::from_dollars(1);
        let b = Usd::from_dollars(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn no_drift_over_many_small_adds() {
        // The 50-year hourly-packet ledger: 438,000 burns of 10 micro-dollars.
        let per = Usd::from_micros(10);
        let mut total = Usd::ZERO;
        for _ in 0..438_000 {
            total += per;
        }
        assert_eq!(total, Usd::from_cents(438));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Usd::from_dollars(0).to_string(), "$0.00");
        assert_eq!(Usd::from_cents(438).to_string(), "$4.38");
        assert_eq!(Usd::from_dollars(1_234_567).to_string(), "$1,234,567.00");
        assert_eq!(Usd::from_cents(-995).to_string(), "-$9.95");
        assert_eq!(Usd::from_micros(5_000).to_string(), "$0.01"); // Rounds up.
        assert_eq!(Usd::from_micros(4_999).to_string(), "$0.00");
    }

    #[test]
    fn checked_add_overflow() {
        let max = Usd::from_micros(i128::MAX);
        assert_eq!(max.checked_add(Usd::from_micros(1)), None);
        assert!(max.checked_add(Usd::ZERO).is_some());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_nan_panics() {
        Usd::from_dollars_f64(f64::NAN);
    }
}
