//! Minimal serde-free JSON object parser for protocol frames.
//!
//! The serve protocol deliberately restricts every frame to a *flat*
//! JSON object — string, integer, float, boolean or null values, no
//! nesting — which keeps the hand-rolled parser small enough to reason
//! about under adversarial input (the vendored-offline build rule bans
//! serde, mirroring the encoder in `telemetry::jsonl`). The parser is
//! total: any byte string either yields a field list or a typed
//! [`JsonError`]; it never panics and never loops without consuming
//! input, which the `tests/properties.rs` fuzz targets pin.
//!
//! Integers are kept exact (`u64`/`i64`) rather than routed through
//! `f64`, because scenario seeds are 64-bit and digests are compared
//! bit-for-bit.

/// A parsed scalar value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string (escapes resolved).
    Str(String),
    /// An integer without fractional part or exponent, in `u64` range.
    UInt(u64),
    /// A negative integer in `i64` range.
    Int(i64),
    /// Any other JSON number.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Why parsing failed. The message names the defect and the byte offset
/// so protocol errors are actionable from the client side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the defect in the frame payload.
    pub at: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for JsonError {}

/// A parsed flat object: fields in source order. Duplicate keys are a
/// parse error — a request that says `"seed":1` and `"seed":2` is
/// ambiguous, and ambiguity in a determinism service is a defect.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Object {
    fields: Vec<(String, Value)>,
}

impl Object {
    /// Field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All fields in source order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// String field, if present and a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer field, if present and a non-negative integer.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Float field: accepts any numeric value (integers widen).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Float(v)) => Some(*v),
            Some(Value::UInt(v)) => Some(*v as f64),
            Some(Value::Int(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean field, if present and a boolean.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &'static str) -> Result<T, JsonError> {
        Err(JsonError { at: self.pos, what })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn require(&mut self, byte: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.require(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some(h) = self.bump().and_then(|b| (b as char).to_digit(16))
                            else {
                                return self.err("bad \\u escape");
                            };
                            code = code * 16 + h;
                        }
                        // Surrogates are refused rather than decoded: the
                        // protocol never emits them and accepting lone
                        // halves would mint invalid scalar values.
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return self.err("\\u escape is not a scalar value"),
                        }
                    }
                    _ => return self.err("unknown escape"),
                },
                Some(b) if b < 0x20 => return self.err("raw control byte in string"),
                Some(b) => {
                    // Reassemble multi-byte UTF-8: the payload is already
                    // validated UTF-8 by the framing layer, but re-check
                    // here so the parser is safe on raw byte input too.
                    let len: usize = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return self.err("invalid utf-8 in string"),
                    };
                    let start = self.pos - 1;
                    let Some(chunk) = self.bytes.get(start..start + len) else {
                        return self.err("invalid utf-8 in string");
                    };
                    match core::str::from_utf8(chunk) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + len;
                        }
                        Err(_) => return self.err("invalid utf-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_digit {
            return self.err("malformed number");
        }
        // The framing layer guarantees UTF-8; the span is ASCII by
        // construction of the loop above.
        let Ok(text) = core::str::from_utf8(&self.bytes[start..self.pos]) else {
            return self.err("malformed number");
        };
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Float(v)),
            _ => self.err("malformed number"),
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'{' | b'[') => self.err("nested values are not allowed in protocol frames"),
            _ => self.err("expected a value"),
        }
    }

    fn keyword(&mut self, word: &'static str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err("unknown keyword")
        }
    }
}

/// Parses one flat JSON object.
///
/// # Errors
///
/// [`JsonError`] naming the defect and byte offset: trailing garbage,
/// nesting, duplicate keys, malformed literals.
pub fn parse_object(text: &str) -> Result<Object, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.require(b'{', "expected '{'")?;
    let mut fields: Vec<(String, Value)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return p.err("duplicate key");
            }
            p.skip_ws();
            p.require(b':', "expected ':'")?;
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return p.err("expected ',' or '}'"),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing bytes after object");
    }
    Ok(Object { fields })
}

/// Appends `s` JSON-escaped (with quotes) to `out` — same escaping rules
/// as `telemetry::jsonl`, re-implemented here so the protocol layer does
/// not reach into that crate's private helpers.
pub fn push_escaped(out: &mut String, s: &str) {
    use core::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let obj = parse_object(
            "{\"op\":\"run\",\"seed\":3735928559,\"intensity\":0.5,\
             \"stream\":true,\"note\":null,\"neg\":-4}",
        )
        .unwrap();
        assert_eq!(obj.str_field("op"), Some("run"));
        assert_eq!(obj.u64_field("seed"), Some(0xdead_beef));
        assert_eq!(obj.f64_field("intensity"), Some(0.5));
        assert_eq!(obj.bool_field("stream"), Some(true));
        assert_eq!(obj.get("note"), Some(&Value::Null));
        assert_eq!(obj.get("neg"), Some(&Value::Int(-4)));
    }

    #[test]
    fn rejects_nesting_duplicates_and_trailing() {
        assert!(parse_object("{\"a\":{}}").is_err());
        assert!(parse_object("{\"a\":[1]}").is_err());
        assert!(parse_object("{\"a\":1,\"a\":2}").is_err());
        assert!(parse_object("{} x").is_err());
        assert!(parse_object("{\"a\":1e400}").is_err(), "non-finite float");
        assert!(parse_object("").is_err());
        assert!(parse_object("{\"a\"").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let mut rendered = String::from("{\"k\":");
        push_escaped(&mut rendered, "a\"\\\n\tb\u{1}—");
        rendered.push('}');
        let obj = parse_object(&rendered).unwrap();
        assert_eq!(obj.str_field("k"), Some("a\"\\\n\tb\u{1}—"));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let obj = parse_object("{\"seed\":18446744073709551615}").unwrap();
        assert_eq!(obj.u64_field("seed"), Some(u64::MAX));
    }
}
