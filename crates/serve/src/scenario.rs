//! Scenario requests: the pure function from a wire request to a
//! deterministic simulation run.
//!
//! A serve request names a *scenario* (a config constructor), a seed and
//! a handful of knobs. [`RunSpec::fleet_config`] maps those to the exact
//! [`FleetConfig`] a library caller would build, and
//! [`RunSpec::fault_plan`] derives the chaos schedule from the same
//! published recipe — so a client, the daemon, and a direct library run
//! all construct bit-identical worlds. That purity is the whole serving
//! story: it is what makes results cacheable by fingerprint and
//! re-provable on demand (`op:"replay"`), and `tests/serve_differential.rs`
//! holds the daemon to it digest-for-digest.
//!
//! The cache key ([`RunSpec::request_key`]) reuses
//! [`fleet::snapshot::config_fingerprint`] — the same fold that guards
//! snapshot resume — extended with the chaos recipe, which changes run
//! output but is not part of the fleet config. Shard count is
//! deliberately *excluded*: sharded execution is digest-identical to
//! serial by the `fleet::shard` contract, so `k=1` and `k=4` requests
//! for the same scenario share one cache entry.

use chaos::{FaultPlan, FaultPlanBuilder};
use fleet::sim::{ArmConfig, FleetConfig, FleetReport, FleetSim, SamplingMode};
use fleet::snapshot::config_fingerprint;
use simcore::snapshot::{fnv1a, ByteWriter};
use simcore::time::SimDuration;

use crate::ServeError;

/// Salt folded into the chaos plan seed so a scenario's fault schedule
/// is a *published* function of the request seed: plan seed =
/// `seed ^ CHAOS_PLAN_SALT`. Clients and replay verifiers reconstruct
/// the identical plan from this constant (see DESIGN.md §16).
pub const CHAOS_PLAN_SALT: u64 = 0x6365_6e74_5f73_7276; // "cent_srv"

/// Bounds on the horizon knob: a zero-year run is meaningless and a
/// 10-millennium request is a typo, not a workload.
pub const MAX_YEARS: u64 = 10_000;

/// Bounds on the shard knob (matches the differential suites' range).
pub const MAX_SHARDS: usize = 64;

/// Bounds on the scaled scenario's device knob.
pub const MAX_DEVICES: usize = 4_000_000;

/// Which config constructor the request names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The paper's two-arm experiment ([`FleetConfig::paper_experiment`]).
    Paper,
    /// The throughput bench's synthetic many-arm fleet: 16 equal owned
    /// arms totalling `devices` sensors.
    Scaled {
        /// Total device count across the 16 arms.
        devices: usize,
    },
}

/// The chaos recipe requested, if any.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosSpec {
    /// Fault-free run.
    Off,
    /// [`FaultPlanBuilder::full`] at the given intensity.
    Full {
        /// Plan intensity in `[0, 1]`.
        intensity: f64,
    },
    /// [`FaultPlanBuilder::storm_heavy`] at the given intensity.
    Storm {
        /// Plan intensity in `[0, 1]`.
        intensity: f64,
    },
}

/// A fully-validated run request: everything that determines the run's
/// digest, and nothing that does not (stream/cache/deadline knobs live
/// on the enclosing request).
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Scenario constructor.
    pub scenario: Scenario,
    /// Master seed.
    pub seed: u64,
    /// Horizon in years.
    pub years: u64,
    /// Weekly sampling mode (legacy or aggregate).
    pub sampling: SamplingMode,
    /// Worker-side shard count (`1` = serial). Never part of the cache
    /// key: sharded digests are bit-identical to serial by contract.
    pub shards: usize,
    /// Chaos recipe.
    pub chaos: ChaosSpec,
}

/// What a completed run leaves behind: the digest, the event count, and
/// the rendered JSONL body (diary, spans, metrics — the
/// [`FleetReport::export_jsonl`] stream the daemon serves back).
#[derive(Debug)]
pub struct RunArtifact {
    /// The deterministic 64-bit run digest.
    pub digest: u64,
    /// Events the engine processed.
    pub events: u64,
    /// `FleetReport::export_jsonl` output.
    pub body: String,
}

impl RunSpec {
    /// The exact configuration a direct library caller would build for
    /// this request.
    pub fn fleet_config(&self) -> FleetConfig {
        let mut cfg = match self.scenario {
            Scenario::Paper => FleetConfig::paper_experiment(self.seed),
            Scenario::Scaled { devices } => {
                let mut cfg = FleetConfig::paper_experiment(self.seed);
                // 16 equal owned arms, the bench's shard-friendly shape.
                cfg.arms = (0..16)
                    .map(|_| ArmConfig::paper_owned_154((devices / 16).max(1), 2))
                    .collect();
                cfg
            }
        };
        cfg.horizon = SimDuration::from_years(self.years);
        cfg.with_sampling(self.sampling)
    }

    /// The chaos plan for this request, built from the published recipe
    /// (`FaultPlanBuilder::{full,storm_heavy}(seed ^ CHAOS_PLAN_SALT)`
    /// against [`fleet_config`](Self::fleet_config)), or `None` for
    /// plain runs.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] if the intensity is outside `[0, 1]`
    /// (surfaced from the chaos crate's own validation).
    pub fn fault_plan(&self) -> Result<Option<FaultPlan>, ServeError> {
        let (builder, intensity) = match self.chaos {
            ChaosSpec::Off => return Ok(None),
            ChaosSpec::Full { intensity } => {
                (FaultPlanBuilder::full(self.seed ^ CHAOS_PLAN_SALT), intensity)
            }
            ChaosSpec::Storm { intensity } => {
                (FaultPlanBuilder::storm_heavy(self.seed ^ CHAOS_PLAN_SALT), intensity)
            }
        };
        builder
            .build(&self.fleet_config(), intensity)
            .map(Some)
            .map_err(|e| ServeError::BadRequest(format!("chaos plan rejected: {e}")))
    }

    /// The digest-addressed cache key: the snapshot config fingerprint
    /// (seed, horizon, sampling, every arm's shape — the facets that
    /// rebuild the world) extended with the chaos recipe. Two requests
    /// with equal keys are the *same pure computation*; shard count and
    /// transport knobs never enter the fold.
    pub fn request_key(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_str("century-serve-cache-key-v1");
        w.put_u64(config_fingerprint(&self.fleet_config()));
        match self.chaos {
            ChaosSpec::Off => w.put_u8(0),
            ChaosSpec::Full { intensity } => {
                w.put_u8(1);
                w.put_u64(intensity.to_bits());
            }
            ChaosSpec::Storm { intensity } => {
                w.put_u8(2);
                w.put_u64(intensity.to_bits());
            }
        }
        fnv1a(w.as_bytes())
    }

    /// Executes the run on the existing substrate: serial
    /// [`FleetSim::run`] at `shards == 1`, the forced sharded path
    /// ([`fleet::shard::run_sharded_forced`] /
    /// [`chaos::run_sharded_with_plan_forced`]) above it — *forced* so a
    /// `k=4` request genuinely exercises multi-shard execution even on
    /// small fleets, exactly like the differential suites.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an invalid chaos recipe,
    /// [`ServeError::Internal`] for shard-plan failures.
    pub fn execute(&self) -> Result<RunArtifact, ServeError> {
        let cfg = self.fleet_config();
        let plan = self.fault_plan()?;
        let internal = |e: fleet::shard::ShardError| ServeError::Internal(format!("shard: {e}"));
        let report: FleetReport = match (plan, self.shards) {
            (None, 1) => FleetSim::run(cfg),
            (None, k) => fleet::shard::run_sharded_forced(cfg, k).map_err(internal)?,
            (Some(p), 1) => chaos::run_with_plan(cfg, p),
            (Some(p), k) => chaos::run_sharded_with_plan_forced(cfg, p, k).map_err(internal)?,
        };
        Ok(RunArtifact {
            digest: report.digest(),
            events: report.events_processed,
            body: report.export_jsonl(),
        })
    }
}

/// Parses the run-shaped fields out of a request object, applying
/// defaults and validating ranges. Shared by `op:"run"` and
/// `op:"replay"`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] naming the offending field.
pub fn run_spec_from(obj: &crate::json::Object) -> Result<RunSpec, ServeError> {
    let bad = |msg: String| Err(ServeError::BadRequest(msg));

    let scenario = match obj.str_field("scenario").unwrap_or("paper") {
        "paper" => {
            if obj.get("devices").is_some() {
                return bad("field 'devices' only applies to scenario \"scaled\"".to_string());
            }
            Scenario::Paper
        }
        "scaled" => {
            let devices = match obj.get("devices") {
                None => 1_000,
                Some(crate::json::Value::UInt(v)) => *v as usize,
                Some(_) => return bad("field 'devices' must be a non-negative integer".to_string()),
            };
            if devices == 0 || devices > MAX_DEVICES {
                return bad(format!("'devices' must be in 1..={MAX_DEVICES}"));
            }
            Scenario::Scaled { devices }
        }
        other => return bad(format!("unknown scenario {other:?} (expected \"paper\" or \"scaled\")")),
    };

    let seed = match obj.get("seed") {
        None => 0,
        Some(crate::json::Value::UInt(v)) => *v,
        Some(_) => return bad("field 'seed' must be a non-negative integer".to_string()),
    };

    let years = match obj.get("years") {
        None => 50,
        Some(crate::json::Value::UInt(v)) => *v,
        Some(_) => return bad("field 'years' must be a non-negative integer".to_string()),
    };
    if years == 0 || years > MAX_YEARS {
        return bad(format!("'years' must be in 1..={MAX_YEARS}"));
    }

    let sampling = match obj.str_field("sampling") {
        None | Some("legacy") => SamplingMode::Legacy,
        Some("aggregate") => SamplingMode::Aggregate,
        Some(other) => {
            return bad(format!(
                "unknown sampling {other:?} (expected \"legacy\" or \"aggregate\")"
            ))
        }
    };

    let shards = match obj.get("shards") {
        None => 1usize,
        Some(crate::json::Value::UInt(v)) => *v as usize,
        Some(_) => return bad("field 'shards' must be a non-negative integer".to_string()),
    };
    if shards == 0 || shards > MAX_SHARDS {
        return bad(format!("'shards' must be in 1..={MAX_SHARDS}"));
    }

    let intensity = match obj.get("intensity") {
        None => 1.0f64,
        Some(_) => match obj.f64_field("intensity") {
            Some(v) => v,
            None => return bad("field 'intensity' must be a number".to_string()),
        },
    };
    if !intensity.is_finite() || !(0.0..=1.0).contains(&intensity) {
        return bad("'intensity' must be a finite number in [0, 1]".to_string());
    }
    let chaos = match obj.str_field("chaos") {
        None | Some("off") => ChaosSpec::Off,
        Some("full") => ChaosSpec::Full { intensity },
        Some("storm") => ChaosSpec::Storm { intensity },
        Some(other) => {
            return bad(format!(
                "unknown chaos {other:?} (expected \"off\", \"full\" or \"storm\")"
            ))
        }
    };
    if matches!(chaos, ChaosSpec::Off) && obj.get("intensity").is_some() {
        return bad("field 'intensity' requires chaos \"full\" or \"storm\"".to_string());
    }

    Ok(RunSpec { scenario, seed, years, sampling, shards, chaos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    fn spec(json: &str) -> Result<RunSpec, ServeError> {
        run_spec_from(&parse_object(json).map_err(|e| ServeError::BadRequest(e.to_string()))?)
    }

    #[test]
    fn defaults_are_the_paper_run() {
        let s = spec("{\"op\":\"run\"}").unwrap();
        assert_eq!(s.scenario, Scenario::Paper);
        assert_eq!((s.seed, s.years, s.shards), (0, 50, 1));
        assert_eq!(s.sampling, SamplingMode::Legacy);
        assert_eq!(s.chaos, ChaosSpec::Off);
        assert_eq!(s.fleet_config().horizon, SimDuration::from_years(50));
    }

    #[test]
    fn range_and_type_validation() {
        assert!(spec("{\"years\":0}").is_err());
        assert!(spec("{\"years\":10001}").is_err());
        assert!(spec("{\"shards\":0}").is_err());
        assert!(spec("{\"shards\":65}").is_err());
        assert!(spec("{\"seed\":-1}").is_err());
        assert!(spec("{\"scenario\":\"nope\"}").is_err());
        assert!(spec("{\"chaos\":\"full\",\"intensity\":1.5}").is_err());
        assert!(spec("{\"intensity\":0.5}").is_err(), "intensity without chaos");
        assert!(spec("{\"devices\":10}").is_err(), "devices without scaled");
        assert!(spec("{\"scenario\":\"scaled\",\"devices\":0}").is_err());
    }

    #[test]
    fn cache_key_ignores_shards_but_not_chaos_or_sampling() {
        let base = spec("{\"seed\":7,\"years\":10}").unwrap();
        let sharded = spec("{\"seed\":7,\"years\":10,\"shards\":4}").unwrap();
        assert_eq!(base.request_key(), sharded.request_key(), "shards must not split the cache");

        let chaotic = spec("{\"seed\":7,\"years\":10,\"chaos\":\"full\"}").unwrap();
        assert_ne!(base.request_key(), chaotic.request_key());
        let storm = spec("{\"seed\":7,\"years\":10,\"chaos\":\"storm\"}").unwrap();
        assert_ne!(chaotic.request_key(), storm.request_key());
        let dialed = spec("{\"seed\":7,\"years\":10,\"chaos\":\"full\",\"intensity\":0.5}").unwrap();
        assert_ne!(chaotic.request_key(), dialed.request_key());

        let agg = spec("{\"seed\":7,\"years\":10,\"sampling\":\"aggregate\"}").unwrap();
        assert_ne!(base.request_key(), agg.request_key());
        let other_seed = spec("{\"seed\":8,\"years\":10}").unwrap();
        assert_ne!(base.request_key(), other_seed.request_key());
    }

    #[test]
    fn execute_matches_direct_library_run() {
        let s = spec("{\"seed\":3,\"years\":2}").unwrap();
        let direct = FleetSim::run(s.fleet_config());
        let served = s.execute().unwrap();
        assert_eq!(served.digest, direct.digest());
        assert_eq!(served.events, direct.events_processed);
        assert_eq!(served.body, direct.export_jsonl());
    }
}
