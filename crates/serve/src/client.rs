//! A small blocking protocol client.
//!
//! Used by the `century-serve --request` mode, the test batteries and
//! the verify smoke: connect, send one request frame, collect response
//! frames until the terminal `result`/`error` frame. The client is
//! intentionally thin — it parses just enough of each response to
//! classify it, and hands the raw payloads back so tests can assert on
//! exact wire shapes.

use std::net::TcpStream;
use std::time::Duration;

use crate::frame::{self, FrameError, ReadFrame, DEFAULT_MAX_FRAME};
use crate::json::{parse_object, Object};

/// One response frame, classified by its `"type"` field.
#[derive(Debug)]
pub enum Response {
    /// The terminal `{"type":"result",...}` frame.
    Result(Object),
    /// A terminal `{"type":"error",...}` frame.
    Error {
        /// The typed wire code ([`crate::ServeError::code`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// A streamed non-terminal frame (`body`, `sweep_arm`).
    Stream(Object),
}

/// Why a client call failed at the transport or protocol layer (as
/// opposed to an in-band [`Response::Error`]).
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(std::io::Error),
    /// The server's frame could not be decoded.
    Frame(FrameError),
    /// The server sent a frame the client cannot classify.
    Protocol(String),
    /// The connection closed before a terminal frame.
    Disconnected,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o failed: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Disconnected => write!(f, "server closed before a terminal frame"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4300`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        // A generous dead-peer guard: the protocol answers everything
        // with a frame, so a long silent gap means the daemon is gone.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
        Ok(Client { stream, max_frame: DEFAULT_MAX_FRAME })
    }

    /// Sends one raw request payload (a JSON object line).
    ///
    /// # Errors
    ///
    /// [`ClientError::Frame`] if the write fails.
    pub fn send(&mut self, payload: &str) -> Result<(), ClientError> {
        frame::write_frame(&mut self.stream, payload).map_err(ClientError::Frame)
    }

    /// Reads one response frame's raw payload (the binary's `--request`
    /// mode prints these verbatim, one per line).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or undecodable frames.
    pub fn read_raw(&mut self) -> Result<String, ClientError> {
        loop {
            match frame::read_frame(&mut self.stream, self.max_frame) {
                Ok(ReadFrame::Idle) => continue,
                Ok(ReadFrame::Closed) => return Err(ClientError::Disconnected),
                Ok(ReadFrame::Frame(payload)) => return Ok(payload),
                Err(e) => return Err(ClientError::Frame(e)),
            }
        }
    }

    /// Reads one response frame.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, undecodable frames, or
    /// frames without a recognizable `"type"`.
    pub fn read(&mut self) -> Result<Response, ClientError> {
        let payload = self.read_raw()?;
        classify(&payload)
    }

    /// Sends `payload` and collects frames until the terminal one.
    /// Returns `(streamed, terminal)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] if the transport fails before a terminal frame.
    pub fn call(&mut self, payload: &str) -> Result<(Vec<Object>, Response), ClientError> {
        self.send(payload)?;
        let mut streamed = Vec::new();
        loop {
            match self.read()? {
                Response::Stream(obj) => streamed.push(obj),
                terminal => return Ok((streamed, terminal)),
            }
        }
    }
}

/// Classifies one raw response payload by its `"type"` field.
///
/// # Errors
///
/// [`ClientError::Protocol`] for unparseable or untyped frames.
pub fn classify(payload: &str) -> Result<Response, ClientError> {
    let obj = parse_object(payload)
        .map_err(|e| ClientError::Protocol(format!("unparseable frame: {e}")))?;
    match obj.str_field("type") {
        Some("result") => Ok(Response::Result(obj)),
        Some("error") => Ok(Response::Error {
            code: obj.str_field("code").unwrap_or("unknown").to_string(),
            message: obj.str_field("message").unwrap_or("").to_string(),
        }),
        Some("body" | "sweep_arm") => Ok(Response::Stream(obj)),
        other => Err(ClientError::Protocol(format!("unknown frame type {other:?}"))),
    }
}
