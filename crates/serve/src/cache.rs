//! Digest-addressed on-disk result cache.
//!
//! Completed runs are memoized under their [`request_key`]
//! (`RunSpec::request_key`) in one file per entry,
//! `<dir>/<key:016x>.run`, wrapped in the same versioned, checksummed
//! frame as world snapshots ([`simcore::snapshot::seal`]) — so every
//! read re-verifies the FNV-1a trailer and a torn, truncated or
//! bit-flipped entry is *refused fail-closed* and treated as absent
//! (recompute, overwrite), never served. Writes go through
//! [`simcore::snapshot::write_atomic`] (temp sibling, fsync, rename), so
//! a crash mid-store leaves either the old entry or none.
//!
//! A hit is verifiable twice over: the sealed frame's checksum covers
//! the whole payload, and the payload additionally records the run
//! digest and a separate FNV digest of the JSONL body, which
//! [`CachedRun::verify`] re-folds — the `op:"replay"` path then goes
//! further and re-executes the scenario to re-prove the digest itself.

use std::io;
use std::path::{Path, PathBuf};

use simcore::snapshot::{self, ByteReader, ByteWriter, SnapshotError};

use crate::scenario::RunArtifact;

/// Version byte of the cache entry payload. Bump on layout change; old
/// entries then read as damaged and are recomputed.
pub const CACHE_ENTRY_VERSION: u8 = 1;

/// What a lookup found.
pub enum Lookup {
    /// A verified entry.
    Hit(CachedRun),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed verification (torn write, truncation,
    /// bit flip, foreign key, stale version). The caller recomputes; the
    /// damaged file is left to be atomically overwritten by the store.
    Damaged {
        /// Why verification refused the entry.
        reason: String,
    },
}

/// A verified cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRun {
    /// The request key the entry was stored under.
    pub key: u64,
    /// The run digest recorded at store time.
    pub digest: u64,
    /// Events processed by the original run.
    pub events: u64,
    /// The rendered JSONL body (diary, spans, metrics).
    pub body: String,
}

impl CachedRun {
    /// Re-folds the body and cross-checks the recorded FNV digest. Held
    /// as a separate step so callers can re-verify an entry they have
    /// carried around in memory.
    pub fn verify(&self, expected_body_fnv: u64) -> bool {
        snapshot::fnv1a(self.body.as_bytes()) == expected_body_fnv
    }
}

/// The on-disk cache: a directory of sealed entries.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<ResultCache, SnapshotError> {
        std::fs::create_dir_all(dir).map_err(SnapshotError::Io)?;
        Ok(ResultCache { dir: dir.to_path_buf() })
    }

    /// The entry path for a key (exposed so tests can damage entries).
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.run"))
    }

    /// Looks up `key`, verifying the sealed frame and the body digest.
    /// Never errors: every defect downgrades to [`Lookup::Damaged`] (or
    /// [`Lookup::Miss`] for a simply-absent file) so the serving path
    /// always has the recompute fallback.
    pub fn lookup(&self, key: u64) -> Lookup {
        let path = self.entry_path(key);
        let payload = match snapshot::read_verified(&path, CACHE_ENTRY_VERSION) {
            Ok((_version, payload)) => payload,
            Err(SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                return Lookup::Miss
            }
            Err(e) => return Lookup::Damaged { reason: e.to_string() },
        };
        match Self::decode(&payload) {
            Ok(entry) if entry.key != key => Lookup::Damaged {
                reason: format!(
                    "entry records key {:016x} but was filed under {key:016x}",
                    entry.key
                ),
            },
            Ok(entry) => Lookup::Hit(entry),
            Err(e) => Lookup::Damaged { reason: e.to_string() },
        }
    }

    /// Stores a completed run under `key`, atomically.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure — the caller serves
    /// the fresh result regardless; only memoization is lost.
    pub fn store(&self, key: u64, artifact: &RunArtifact) -> Result<(), SnapshotError> {
        let mut w = ByteWriter::with_capacity(64 + artifact.body.len());
        w.put_u64(key);
        w.put_u64(artifact.digest);
        w.put_u64(artifact.events);
        w.put_u64(snapshot::fnv1a(artifact.body.as_bytes()));
        w.put_str(&artifact.body);
        let sealed = snapshot::seal(CACHE_ENTRY_VERSION, w.as_bytes());
        snapshot::write_atomic(&self.entry_path(key), &sealed)
    }

    fn decode(payload: &[u8]) -> Result<CachedRun, SnapshotError> {
        let mut r = ByteReader::new(payload);
        let key = r.take_u64()?;
        let digest = r.take_u64()?;
        let events = r.take_u64()?;
        let body_fnv = r.take_u64()?;
        let body = r.take_str()?;
        r.finish()?;
        if snapshot::fnv1a(body.as_bytes()) != body_fnv {
            return Err(SnapshotError::Corrupt { what: "cache entry body digest mismatch" });
        }
        Ok(CachedRun { key, digest, events, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> RunArtifact {
        RunArtifact {
            digest: 0xabad_cafe_dead_beef,
            events: 2848,
            body: "{\"type\":\"event\",\"t\":0,\"msg\":\"x\"}\n".to_string(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("century-serve-cache-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ResultCache::open(&tmp("roundtrip")).unwrap();
        let art = artifact();
        assert!(matches!(cache.lookup(42), Lookup::Miss));
        cache.store(42, &art).unwrap();
        match cache.lookup(42) {
            Lookup::Hit(hit) => {
                assert_eq!(hit.key, 42);
                assert_eq!(hit.digest, art.digest);
                assert_eq!(hit.events, art.events);
                assert_eq!(hit.body, art.body);
                assert!(hit.verify(snapshot::fnv1a(art.body.as_bytes())));
            }
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn torn_truncated_and_flipped_entries_are_damaged_not_served() {
        let cache = ResultCache::open(&tmp("damage")).unwrap();
        cache.store(7, &artifact()).unwrap();
        let path = cache.entry_path(7);
        let good = std::fs::read(&path).unwrap();

        // Truncation (torn write survivor).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(cache.lookup(7), Lookup::Damaged { .. }));

        // Single bit flip in the payload.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(cache.lookup(7), Lookup::Damaged { .. }));

        // Recompute path: an atomic store over the damage restores service.
        cache.store(7, &artifact()).unwrap();
        assert!(matches!(cache.lookup(7), Lookup::Hit(_)));
    }

    #[test]
    fn entry_filed_under_wrong_key_is_refused() {
        let cache = ResultCache::open(&tmp("wrongkey")).unwrap();
        cache.store(1, &artifact()).unwrap();
        std::fs::rename(cache.entry_path(1), cache.entry_path(2)).unwrap();
        assert!(matches!(cache.lookup(2), Lookup::Damaged { .. }));
    }
}
