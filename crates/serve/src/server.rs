//! The TCP daemon: accept loop, per-connection protocol, shutdown.
//!
//! Topology: one accept thread owns the listener; each connection gets a
//! thread that decodes frames, dispatches ops, and writes response
//! frames. Long work (scenario runs) goes through the shared
//! [`Scheduler`], so concurrency is bounded by the worker pool no matter
//! how many connections are open; sweeps and stats run inline on the
//! connection thread.
//!
//! There are no signals and no async runtime: shutdown is a flag
//! ([`Server::shutdown`] or the `op:"shutdown"` frame) that every
//! blocking loop polls via short read timeouts ([`ReadFrame::Idle`]).
//! The sequencing is strictly graceful — stop accepting, join
//! connections (each finishes its in-flight request), then drop the
//! scheduler, whose drain finishes every queued job and completes its
//! cache stores before the workers join.
//!
//! Protocol (all frames are flat JSON objects, see [`crate::json`]):
//!
//! | op         | effect |
//! |------------|--------|
//! | `ping`     | liveness check |
//! | `run`      | execute/serve a scenario (`cache`, `stream`, `deadline_ms` knobs) |
//! | `replay`   | re-execute a cached scenario and re-prove its digest |
//! | `sweep`    | replicated parallel summary over seeds ([`bench::parallel`]) |
//! | `stats`    | snapshot of the `serve.*` telemetry registry |
//! | `shutdown` | begin graceful drain |
//!
//! Responses are `{"type":"result",...}` on success, `{"type":"error",
//! "code":...,"message":...}` on refusal (codes from
//! [`ServeError::code`]), with `{"type":"body",...}` /
//! `{"type":"sweep_arm",...}` frames streamed ahead of the terminal
//! frame. Every defect — malformed frame, hostile length, bad request,
//! overload, deadline — is answered with a typed error frame or a closed
//! connection, never a panic and never a hang.

use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use telemetry::registry::{Counter, MetricValue, Registry};

use crate::cache::{Lookup, ResultCache};
use crate::frame::{self, FrameError, ReadFrame, DEFAULT_MAX_FRAME};
use crate::json::{self, push_escaped, Object};
use crate::pool::{CacheMode, PoolMetrics, Scheduler, Served};
use crate::scenario::{run_spec_from, RunSpec};
use crate::ServeError;

/// How long blocking reads wait before re-polling the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests rely on it).
    pub addr: String,
    /// Result-cache directory (created if needed).
    pub cache_dir: PathBuf,
    /// Worker threads executing scenario runs.
    pub workers: usize,
    /// Bounded queue depth behind the workers (admission control).
    pub queue_depth: usize,
    /// Per-connection frame cap in bytes.
    pub max_frame: usize,
}

impl ServerConfig {
    /// Loopback defaults around a cache directory: ephemeral port, two
    /// workers, a queue of eight, the 1 MiB frame cap.
    pub fn local(cache_dir: PathBuf) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir,
            workers: 2,
            queue_depth: 8,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Connection-level telemetry (the pool has its own, [`PoolMetrics`]).
#[derive(Clone)]
struct ServerMetrics {
    connections: Counter,
    requests: Counter,
    protocol_errors: Counter,
    sweeps: Counter,
}

impl ServerMetrics {
    fn register(reg: &Registry) -> Result<ServerMetrics, telemetry::TelemetryError> {
        Ok(ServerMetrics {
            connections: reg.counter("serve.connections")?,
            requests: reg.counter("serve.requests")?,
            protocol_errors: reg.counter("serve.protocol.errors")?,
            sweeps: reg.counter("serve.sweeps")?,
        })
    }
}

/// Everything a connection thread needs, shared by `Arc`.
struct Ctx {
    scheduler: Arc<Scheduler>,
    cache: ResultCache,
    registry: Arc<Registry>,
    metrics: ServerMetrics,
    shutdown: Arc<AtomicBool>,
    max_frame: usize,
}

/// A running daemon. Dropping it shuts it down gracefully.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds, spawns the worker pool and accept thread, and returns once
    /// the daemon is accepting connections.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if the bind, cache open, metric
    /// registration or thread spawn fails — a daemon that cannot fully
    /// start refuses to half-start.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServeError> {
        let internal = |what: &str, e: &dyn core::fmt::Display| {
            ServeError::Internal(format!("{what}: {e}"))
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| internal("bind failed", &e))?;
        let addr = listener.local_addr().map_err(|e| internal("local_addr failed", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| internal("set_nonblocking failed", &e))?;

        let registry = Arc::new(Registry::new());
        let pool_metrics =
            PoolMetrics::register(&registry).map_err(|e| internal("metrics", &e))?;
        let metrics =
            ServerMetrics::register(&registry).map_err(|e| internal("metrics", &e))?;
        let cache = ResultCache::open(&cfg.cache_dir)
            .map_err(|e| internal("cache open failed", &e))?;
        let scheduler =
            Scheduler::start(cache.clone(), cfg.workers, cfg.queue_depth, pool_metrics)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            scheduler: Arc::new(scheduler),
            cache,
            registry: Arc::clone(&registry),
            metrics,
            shutdown: Arc::clone(&shutdown),
            max_frame: cfg.max_frame.max(64),
        });

        let accept = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &ctx))
            .map_err(|e| internal("cannot spawn accept thread", &e))?;

        Ok(Server { addr, shutdown, accept: Some(accept), registry })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's telemetry registry (shared with the pool).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Whether a shutdown has been requested (by [`Self::shutdown`] or a
    /// client's `op:"shutdown"` frame).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown and blocks until in-flight work has
    /// drained and every thread has joined. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the daemon has shut down (a client's `op:"shutdown"`
    /// or a concurrent [`Self::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctx.metrics.connections.inc();
                let ctx_conn = Arc::clone(ctx);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &ctx_conn));
                match spawned {
                    Ok(handle) => connections.push(handle),
                    // Thread exhaustion: the stream drops (connection
                    // refused-by-close); the daemon itself stays up.
                    Err(_) => ctx.metrics.protocol_errors.inc(),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            // Transient accept failures (EMFILE, aborted handshake):
            // back off and keep serving.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
    // Last owner standing: dropping the scheduler drains it — queued
    // jobs finish, cache stores complete, workers join.
}

fn connection_loop(stream: TcpStream, ctx: &Arc<Ctx>) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            // Best-effort notice; the peer may already be gone.
            let _ = send_error(&mut stream, &ServeError::ShuttingDown);
            return;
        }
        match frame::read_frame(&mut stream, ctx.max_frame) {
            Ok(ReadFrame::Idle) => continue,
            Ok(ReadFrame::Closed) => return,
            Ok(ReadFrame::Frame(payload)) => {
                ctx.metrics.requests.inc();
                if handle_request(&mut stream, &payload, ctx).is_err() {
                    // The peer vanished mid-response; nothing to tell it.
                    return;
                }
            }
            Err(e) => {
                // A framing defect desynchronizes the stream: report the
                // typed error, then close rather than guess at a resync.
                ctx.metrics.protocol_errors.inc();
                let _ = send_error(&mut stream, &ServeError::BadFrame(e));
                return;
            }
        }
    }
}

/// Dispatches one request frame. `Err` means the *transport* failed
/// (peer gone) and the connection should close; request-level failures
/// are answered in-band as error frames and return `Ok`.
fn handle_request(
    stream: &mut TcpStream,
    payload: &str,
    ctx: &Arc<Ctx>,
) -> Result<(), FrameError> {
    let obj = match json::parse_object(payload) {
        Ok(obj) => obj,
        Err(e) => {
            ctx.metrics.protocol_errors.inc();
            return send_error(stream, &ServeError::BadRequest(format!("invalid JSON: {e}")));
        }
    };
    let outcome = match obj.str_field("op") {
        Some("ping") => {
            return write_result(stream, "ping", &[]);
        }
        Some("run") => op_run(stream, &obj, ctx),
        Some("replay") => op_replay(stream, &obj, ctx),
        Some("sweep") => op_sweep(stream, &obj, ctx),
        Some("stats") => {
            return op_stats(stream, ctx);
        }
        Some("shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            return write_result(stream, "shutdown", &[]);
        }
        Some(other) => Err(RequestFailure::Refused(ServeError::BadRequest(format!(
            "unknown op {other:?}"
        )))),
        None => Err(RequestFailure::Refused(ServeError::BadRequest(
            "missing required field 'op'".to_string(),
        ))),
    };
    match outcome {
        Ok(()) => Ok(()),
        Err(RequestFailure::Refused(e)) => send_error(stream, &e),
        Err(RequestFailure::Transport(e)) => Err(e),
    }
}

/// Splits "the request was refused" (answer in-band, keep the
/// connection) from "the transport failed" (close the connection).
enum RequestFailure {
    Refused(ServeError),
    Transport(FrameError),
}

impl From<ServeError> for RequestFailure {
    fn from(e: ServeError) -> RequestFailure {
        RequestFailure::Refused(e)
    }
}

impl From<FrameError> for RequestFailure {
    fn from(e: FrameError) -> RequestFailure {
        RequestFailure::Transport(e)
    }
}

/// Parses the request-level (non-digest) knobs shared by run/replay.
fn cache_mode(obj: &Object) -> Result<CacheMode, ServeError> {
    match obj.str_field("cache") {
        None | Some("use") => Ok(CacheMode::Use),
        Some("bypass") => Ok(CacheMode::Bypass),
        Some("refresh") => Ok(CacheMode::Refresh),
        Some(other) => Err(ServeError::BadRequest(format!(
            "unknown cache mode {other:?} (expected \"use\", \"bypass\" or \"refresh\")"
        ))),
    }
}

fn deadline_from(obj: &Object) -> Result<Option<Instant>, ServeError> {
    match obj.get("deadline_ms") {
        None => Ok(None),
        Some(json::Value::UInt(ms)) => {
            Ok(Some(Instant::now() + Duration::from_millis((*ms).min(86_400_000))))
        }
        Some(_) => Err(ServeError::BadRequest(
            "field 'deadline_ms' must be a non-negative integer".to_string(),
        )),
    }
}

fn op_run(stream: &mut TcpStream, obj: &Object, ctx: &Arc<Ctx>) -> Result<(), RequestFailure> {
    let spec = run_spec_from(obj)?;
    let mode = cache_mode(obj)?;
    let deadline = deadline_from(obj)?;
    let stream_body = obj.bool_field("stream") == Some(true);
    if ctx.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown.into());
    }
    let (artifact, served) = ctx.scheduler.run(&spec, mode, deadline)?;
    let mut body_lines = 0u64;
    if stream_body {
        for line in artifact.body.lines() {
            body_lines += 1;
            let mut frame_text = String::with_capacity(line.len() + 32);
            frame_text.push_str("{\"type\":\"body\",\"line\":");
            push_escaped(&mut frame_text, line);
            frame_text.push('}');
            frame::write_frame(stream, &frame_text)?;
        }
    } else {
        body_lines = artifact.body.lines().count() as u64;
    }
    write_result(
        stream,
        "run",
        &[
            ("served", Field::Str(served.as_str())),
            ("digest", Field::U64(artifact.digest)),
            ("digest_hex", Field::Hex(artifact.digest)),
            ("key_hex", Field::Hex(spec.request_key())),
            ("events", Field::U64(artifact.events)),
            ("body_lines", Field::U64(body_lines)),
        ],
    )?;
    Ok(())
}

fn op_replay(stream: &mut TcpStream, obj: &Object, ctx: &Arc<Ctx>) -> Result<(), RequestFailure> {
    let spec: RunSpec = run_spec_from(obj)?;
    let deadline = deadline_from(obj)?;
    let key = spec.request_key();
    let cached = match ctx.cache.lookup(key) {
        Lookup::Hit(hit) => hit,
        Lookup::Miss => return Err(ServeError::NotCached.into()),
        // A damaged entry proves nothing; it cannot anchor a replay.
        Lookup::Damaged { .. } => return Err(ServeError::NotCached.into()),
    };
    if ctx.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown.into());
    }
    // Bypass: a determinism proof must never be answered by the cache
    // entry it is trying to prove.
    let (fresh, served) = ctx.scheduler.run(&spec, CacheMode::Bypass, deadline)?;
    debug_assert_eq!(served, Served::Bypassed);
    let verified = fresh.digest == cached.digest && fresh.body == cached.body;
    write_result(
        stream,
        "replay",
        &[
            ("verified", Field::Bool(verified)),
            ("cached_digest", Field::U64(cached.digest)),
            ("recomputed_digest", Field::U64(fresh.digest)),
            ("key_hex", Field::Hex(key)),
            ("events", Field::U64(fresh.events)),
        ],
    )?;
    Ok(())
}

fn op_sweep(stream: &mut TcpStream, obj: &Object, ctx: &Arc<Ctx>) -> Result<(), RequestFailure> {
    let bad = |msg: &str| ServeError::BadRequest(msg.to_string());
    let seed = match obj.get("seed") {
        None => 0,
        Some(json::Value::UInt(v)) => *v,
        Some(_) => return Err(bad("field 'seed' must be a non-negative integer").into()),
    };
    let years = match obj.get("years") {
        None => 50,
        Some(json::Value::UInt(v)) if (1..=crate::scenario::MAX_YEARS).contains(v) => *v,
        Some(_) => {
            return Err(bad("field 'years' must be an integer in 1..=10000").into());
        }
    };
    let replicates = match obj.get("replicates") {
        None => 4usize,
        Some(json::Value::UInt(v)) if (1..=64).contains(v) => *v as usize,
        Some(_) => return Err(bad("field 'replicates' must be an integer in 1..=64").into()),
    };
    let threads = match obj.get("threads") {
        None => 1usize,
        Some(json::Value::UInt(v)) if (1..=16).contains(v) => *v as usize,
        Some(_) => return Err(bad("field 'threads' must be an integer in 1..=16").into()),
    };
    if ctx.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::ShuttingDown.into());
    }

    let make = |s: u64| {
        let mut cfg = fleet::sim::FleetConfig::paper_experiment(s);
        cfg.horizon = simcore::time::SimDuration::from_years(years);
        cfg
    };
    let mut arms = bench::parallel::run_replicated_parallel_summaries(
        &make, seed, replicates, threads,
    )
    .map_err(|e| ServeError::Internal(format!("sweep failed: {e}")))?;
    ctx.metrics.sweeps.inc();

    let arm_count = arms.len() as u64;
    for arm in &mut arms {
        let mut text = String::from("{\"type\":\"sweep_arm\",\"arm\":");
        push_escaped(&mut text, arm.name);
        push_field(&mut text, "uptime_mean", &Field::F64(arm.uptime.mean()));
        push_field(
            &mut text,
            "uptime_p50",
            &Field::F64(arm.uptime.quantile(0.5).unwrap_or(0.0)),
        );
        push_field(&mut text, "spend_mean", &Field::F64(arm.spend_dollars.mean()));
        push_field(&mut text, "labor_mean", &Field::F64(arm.labor_hours.mean()));
        text.push('}');
        frame::write_frame(stream, &text)?;
    }
    write_result(
        stream,
        "sweep",
        &[
            ("arms", Field::U64(arm_count)),
            ("replicates", Field::U64(replicates as u64)),
            ("seed", Field::U64(seed)),
        ],
    )?;
    Ok(())
}

fn op_stats(stream: &mut TcpStream, ctx: &Arc<Ctx>) -> Result<(), FrameError> {
    let snapshot = ctx.registry.snapshot();
    let mut text = String::from("{\"type\":\"result\",\"op\":\"stats\"");
    for (name, value) in snapshot.entries() {
        match value {
            MetricValue::Counter(v) => push_field(&mut text, name, &Field::U64(*v)),
            MetricValue::Gauge(v) => push_field(&mut text, name, &Field::F64(*v)),
            // Histograms would need nesting; the serve registry holds
            // none, and the flat protocol skips any that appear.
            MetricValue::Histogram { .. } => {}
        }
    }
    text.push('}');
    frame::write_frame(stream, &text)
}

/// Scalar response-field values (the protocol is flat by design).
enum Field {
    Str(&'static str),
    U64(u64),
    Hex(u64),
    F64(f64),
    Bool(bool),
}

fn push_field(out: &mut String, key: &str, value: &Field) {
    out.push(',');
    push_escaped(out, key);
    out.push(':');
    match value {
        Field::Str(s) => push_escaped(out, s),
        Field::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Field::Hex(v) => {
            let _ = write!(out, "\"{v:016x}\"");
        }
        // Whole floats render without a decimal point ("1"); receivers
        // widen integers back to f64, so the roundtrip is lossless.
        Field::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Field::F64(_) => out.push_str("null"),
        Field::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn write_result(
    stream: &mut TcpStream,
    op: &str,
    fields: &[(&str, Field)],
) -> Result<(), FrameError> {
    let mut text = String::from("{\"type\":\"result\",\"op\":");
    push_escaped(&mut text, op);
    for (key, value) in fields {
        push_field(&mut text, key, value);
    }
    text.push('}');
    frame::write_frame(stream, &text)
}

fn send_error(stream: &mut TcpStream, e: &ServeError) -> Result<(), FrameError> {
    let mut text = String::from("{\"type\":\"error\",\"code\":");
    push_escaped(&mut text, e.code());
    text.push_str(",\"message\":");
    push_escaped(&mut text, &e.to_string());
    text.push('}');
    frame::write_frame(stream, &text)
}
