//! `century-serve` — the simulation-as-a-service daemon and its client.
//!
//! Daemon mode (default):
//!
//! ```text
//! century-serve --cache-dir /var/cache/century \
//!     [--addr 127.0.0.1:0] [--workers 2] [--queue-depth 8]
//! ```
//!
//! Prints one `{"type":"ready","addr":"..."}` line to stdout once the
//! socket is accepting (scripts wait on that line, then read the bound
//! port from it), and blocks until a client sends `op:"shutdown"`. All
//! shutdowns are graceful: in-flight runs finish and their cache stores
//! complete.
//!
//! Client mode:
//!
//! ```text
//! century-serve --addr 127.0.0.1:4300 --request '{"op":"run","seed":7}'
//! ```
//!
//! Sends one request frame and prints every response frame verbatim,
//! one JSON line each. Exit status is 0 for a `result` terminal frame,
//! 2 for an in-band `error` frame, 1 for transport failure — so shell
//! gates can distinguish "the daemon refused" from "the daemon is gone".

use std::path::PathBuf;
use std::process::ExitCode;

use serve::client::{classify, Client, Response};
use serve::frame::DEFAULT_MAX_FRAME;
use serve::json::push_escaped;
use serve::{Server, ServerConfig};

struct Args {
    addr: String,
    cache_dir: Option<PathBuf>,
    workers: usize,
    queue_depth: usize,
    request: Option<String>,
}

fn usage() -> &'static str {
    "usage:\n  century-serve --cache-dir DIR [--addr HOST:PORT] [--workers N] [--queue-depth N]\n  century-serve --addr HOST:PORT --request JSON"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: None,
        workers: 2,
        queue_depth: 8,
        request: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth must be a non-negative integer".to_string())?;
            }
            "--request" => args.request = Some(value("--request")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn serve(args: &Args) -> Result<(), String> {
    let Some(cache_dir) = args.cache_dir.clone() else {
        return Err(format!("daemon mode requires --cache-dir\n{}", usage()));
    };
    if args.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let cfg = ServerConfig {
        addr: args.addr.clone(),
        cache_dir,
        workers: args.workers,
        queue_depth: args.queue_depth,
        max_frame: DEFAULT_MAX_FRAME,
    };
    let mut server = Server::start(cfg).map_err(|e| e.to_string())?;
    let mut ready = String::from("{\"type\":\"ready\",\"addr\":");
    push_escaped(&mut ready, &server.addr().to_string());
    ready.push('}');
    println!("{ready}");
    server.wait();
    Ok(())
}

fn request(args: &Args, payload: &str) -> Result<ExitCode, String> {
    let mut client = Client::connect(&args.addr).map_err(|e| e.to_string())?;
    client.send(payload).map_err(|e| e.to_string())?;
    loop {
        let raw = client.read_raw().map_err(|e| e.to_string())?;
        println!("{raw}");
        match classify(&raw).map_err(|e| e.to_string())? {
            Response::Stream(_) => continue,
            Response::Result(_) => return Ok(ExitCode::SUCCESS),
            Response::Error { .. } => return Ok(ExitCode::from(2)),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &args.request {
        Some(payload) => request(&args, &payload.clone()),
        None => serve(&args).map(|()| ExitCode::SUCCESS),
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("century-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
