//! `century-serve`: the deterministic simulation-as-a-service daemon.
//!
//! The paper's century-scale deployments pay off when operators can
//! cheaply ask "what happens to this city under scenario X" on demand
//! (ROADMAP item 2). Scenarios are pure functions of (config, seed) and
//! every run already emits a 64-bit digest, so this crate turns the
//! simulator into a long-running service where identical requests under
//! heavy traffic cost one cache lookup:
//!
//! * [`frame`] — length-prefixed JSONL request/response frames over TCP
//!   (std-only; the repo's serde-free JSONL dialect).
//! * [`json`] — the flat-object protocol parser, total over hostile input.
//! * [`scenario`] — the pure request → ([`FleetConfig`](fleet::sim::FleetConfig),
//!   chaos plan) mapping and the digest-addressed cache key built on
//!   [`fleet::snapshot::config_fingerprint`].
//! * [`cache`] — the on-disk result cache: sealed, checksummed,
//!   atomically written entries; torn files refused fail-closed.
//! * [`pool`] — bounded workers, request coalescing, admission control,
//!   deadlines, graceful drain.
//! * [`server`] — the TCP daemon: accept loop, per-connection protocol,
//!   telemetry, shutdown.
//! * [`client`] — a small blocking client used by the binary's
//!   `--request` mode, the test batteries and the verify smoke.
//!
//! Determinism is the protocol's core promise, proven end-to-end by
//! `tests/serve_differential.rs`: a served run, a cache hit, and a
//! direct library call yield bit-identical digests, and `op:"replay"`
//! re-executes a cached scenario to re-prove its digest on demand.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod frame;
pub mod json;
pub mod pool;
pub mod scenario;
pub mod server;

pub use pool::{CacheMode, Served};
pub use scenario::{RunSpec, CHAOS_PLAN_SALT};
pub use server::{Server, ServerConfig};

/// Typed request-level failures. Every variant maps onto a wire error
/// code (`{"type":"error","code":…}`) — a client can always tell *why*
/// it was refused, and the daemon never answers a defect with a panic
/// or a hang.
#[derive(Debug)]
pub enum ServeError {
    /// The frame was not a valid protocol frame.
    BadFrame(frame::FrameError),
    /// The frame decoded but the request is malformed (bad JSON, unknown
    /// op, out-of-range field).
    BadRequest(String),
    /// Admission control refused the request: the bounded queue is full.
    Overloaded {
        /// The configured queue bound that was hit.
        queue_depth: usize,
    },
    /// The request's deadline passed before a result was available. The
    /// underlying run (if one was scheduled) still completes and lands
    /// in the cache.
    DeadlineExpired,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
    /// `op:"replay"` found no cache entry to prove.
    NotCached,
    /// An execution-side failure (shard planning, worker loss).
    Internal(String),
}

impl ServeError {
    /// The stable wire code for this error (the `"code"` field of an
    /// error frame).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadFrame(frame::FrameError::Oversized { .. }) => "oversized",
            ServeError::BadFrame(_) => "bad_frame",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExpired => "deadline",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::NotCached => "not_cached",
            ServeError::Internal(_) => "internal",
        }
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::BadFrame(e) => write!(f, "bad frame: {e}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { queue_depth } => {
                write!(f, "overloaded: queue of {queue_depth} is full")
            }
            ServeError::DeadlineExpired => write!(f, "deadline expired before a result"),
            ServeError::ShuttingDown => write!(f, "daemon is shutting down"),
            ServeError::NotCached => write!(f, "no cache entry for this scenario"),
            ServeError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::BadFrame(e) => Some(e),
            _ => None,
        }
    }
}
