//! Length-prefixed JSONL framing for the serve protocol.
//!
//! Every message on the wire — request or response — is one *frame*: a
//! 4-byte big-endian payload length followed by exactly that many bytes
//! of UTF-8, which by convention hold a single-line JSON object (the
//! repo's serde-free JSONL dialect, `telemetry::jsonl`). Length prefixes
//! make the stream self-synchronizing for well-behaved peers and make
//! hostile input *cheap to refuse*: a frame longer than the negotiated
//! cap is rejected before a single payload byte is buffered, and a
//! truncated stream is a typed [`FrameError`], never a hang on a
//! half-read length.
//!
//! The decoder has two entry points:
//!
//! * [`decode`] — a pure, incremental function over a byte slice, the
//!   unit the adversarial proptests grind on (`tests/properties.rs`): it
//!   must never panic, never over-read, and never consume bytes without
//!   producing a frame or an error.
//! * [`read_frame`]/[`write_frame`] — blocking I/O wrappers used by the
//!   daemon and client, built on the same validation.

use std::io::{self, Read, Write};

/// Hard ceiling no configuration can raise: 64 MiB. Guards the daemon
/// against a hostile 4 GiB length prefix even if an operator configures
/// a generous per-connection cap.
pub const ABSOLUTE_MAX_FRAME: usize = 64 << 20;

/// Default per-connection frame cap: 1 MiB. Requests are small JSON
/// objects; response bodies are streamed line-by-line, so nothing
/// legitimate approaches this.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be decoded. Every variant is a protocol-level
/// fact the server reports as a typed error frame — decoding never
/// panics and never silently resynchronizes.
#[derive(Debug)]
pub enum FrameError {
    /// The declared payload length exceeds the connection's cap.
    Oversized {
        /// Length the peer declared.
        declared: usize,
        /// Cap it exceeded.
        max: usize,
    },
    /// The stream ended mid-header or mid-payload.
    Truncated,
    /// The payload is not valid UTF-8.
    BadUtf8,
    /// Underlying socket/file error.
    Io(io::Error),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One step of incremental decoding over `buf`.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded {
    /// Not enough bytes yet; no bytes consumed.
    NeedMore,
    /// One complete frame: the payload string and the total bytes
    /// consumed from the front of `buf` (header + payload).
    Frame {
        /// The UTF-8 payload.
        payload: String,
        /// Header + payload bytes consumed.
        consumed: usize,
    },
}

/// Decodes one frame from the front of `buf` without consuming input on
/// a short read. `max` is clamped to [`ABSOLUTE_MAX_FRAME`].
///
/// # Errors
///
/// [`FrameError::Oversized`] as soon as the 4-byte header declares a
/// payload over the cap (before any payload arrives), and
/// [`FrameError::BadUtf8`] for a complete but non-UTF-8 payload.
pub fn decode(buf: &[u8], max: usize) -> Result<Decoded, FrameError> {
    let max = max.min(ABSOLUTE_MAX_FRAME);
    if buf.len() < 4 {
        return Ok(Decoded::NeedMore);
    }
    let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if declared > max {
        return Err(FrameError::Oversized { declared, max });
    }
    let Some(payload) = buf.get(4..4 + declared) else {
        return Ok(Decoded::NeedMore);
    };
    match core::str::from_utf8(payload) {
        Ok(s) => Ok(Decoded::Frame { payload: s.to_string(), consumed: 4 + declared }),
        Err(_) => Err(FrameError::BadUtf8),
    }
}

/// Encodes `payload` as one frame (header + bytes). The inverse of
/// [`decode`] for payloads under the cap.
pub fn encode(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(4 + bytes.len());
    // Payloads are produced by this crate and bounded well below u32::MAX;
    // saturate rather than wrap if that invariant is ever violated.
    let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// [`FrameError::Io`] if the peer has gone away or the write fails.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), FrameError> {
    w.write_all(&encode(payload)).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Outcome of one blocking frame read.
pub enum ReadFrame {
    /// A complete frame arrived.
    Frame(String),
    /// The peer closed the stream cleanly on a frame boundary.
    Closed,
    /// The read timed out before a *new* frame's first byte arrived
    /// (only with a read timeout set on the stream); no bytes were lost.
    Idle,
}

/// Reads exactly one frame from `r`, blocking.
///
/// A clean EOF *between* frames is [`ReadFrame::Closed`]; EOF inside a
/// frame is [`FrameError::Truncated`]. A timeout before the first header
/// byte is [`ReadFrame::Idle`] (so accept loops can poll a shutdown
/// flag); a timeout mid-frame is an error — a half-sent frame means the
/// peer stalled, not idled.
///
/// # Errors
///
/// [`FrameError`] on oversize, truncation, UTF-8 or I/O failure.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<ReadFrame, FrameError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header) {
        Fill::Full => {}
        Fill::Empty => return Ok(ReadFrame::Closed),
        Fill::TimedOutEmpty => return Ok(ReadFrame::Idle),
        Fill::Partial => return Err(FrameError::Truncated),
        Fill::Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_be_bytes(header) as usize;
    let max = max.min(ABSOLUTE_MAX_FRAME);
    if declared > max {
        return Err(FrameError::Oversized { declared, max });
    }
    let mut payload = vec![0u8; declared];
    match read_exact_or_eof(r, &mut payload) {
        Fill::Full => {}
        Fill::Empty | Fill::Partial | Fill::TimedOutEmpty => return Err(FrameError::Truncated),
        Fill::Err(e) => return Err(FrameError::Io(e)),
    }
    match String::from_utf8(payload) {
        Ok(s) => Ok(ReadFrame::Frame(s)),
        Err(_) => Err(FrameError::BadUtf8),
    }
}

enum Fill {
    Full,
    /// EOF before the first byte.
    Empty,
    /// Timeout before the first byte.
    TimedOutEmpty,
    /// EOF after some bytes.
    Partial,
    Err(io::Error),
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Fill {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return if filled == 0 { Fill::Empty } else { Fill::Partial },
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                return Fill::TimedOutEmpty;
            }
            Err(e) => return Fill::Err(e),
        }
    }
    Fill::Full
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode("{\"op\":\"ping\"}");
        match decode(&frame, DEFAULT_MAX_FRAME) {
            Ok(Decoded::Frame { payload, consumed }) => {
                assert_eq!(payload, "{\"op\":\"ping\"}");
                assert_eq!(consumed, frame.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn short_reads_ask_for_more() {
        let frame = encode("{\"op\":\"ping\"}");
        for cut in 0..frame.len() {
            assert_eq!(
                decode(&frame[..cut], DEFAULT_MAX_FRAME).map_err(|_| ()),
                Ok(Decoded::NeedMore),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_payload() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.push(0);
        assert!(matches!(
            decode(&buf, DEFAULT_MAX_FRAME),
            Err(FrameError::Oversized { declared, .. }) if declared == u32::MAX as usize
        ));
        // The cap never exceeds the absolute ceiling.
        assert!(matches!(
            decode(&buf, usize::MAX),
            Err(FrameError::Oversized { max, .. }) if max == ABSOLUTE_MAX_FRAME
        ));
    }

    #[test]
    fn non_utf8_payload_is_refused() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(decode(&buf, DEFAULT_MAX_FRAME), Err(FrameError::BadUtf8)));
    }

    #[test]
    fn blocking_reader_sees_close_on_boundary_and_truncation_inside() {
        let mut ok = encode("{}");
        ok.extend_from_slice(&encode("{\"a\":1}")[..3]); // second frame cut mid-header
        let mut cursor = std::io::Cursor::new(ok);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Ok(ReadFrame::Frame(p)) if p == "{}"
        ));
        assert!(matches!(read_frame(&mut cursor, DEFAULT_MAX_FRAME), Err(FrameError::Truncated)));
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty, DEFAULT_MAX_FRAME), Ok(ReadFrame::Closed)));
    }
}
