//! Bounded worker pool with request coalescing and admission control.
//!
//! The scheduler owns the daemon's execution discipline:
//!
//! * **Bounded everything.** `workers` threads execute runs; at most
//!   `queue_depth` jobs wait behind them. A request that finds the queue
//!   full is rejected *immediately* with a typed
//!   [`ServeError::Overloaded`] — under heavy traffic the daemon sheds
//!   load at admission instead of accumulating invisible latency.
//! * **Coalescing.** Scenario runs are pure functions of their request
//!   key, so concurrent identical requests collapse onto one in-flight
//!   job: the first miss schedules the execution, every later identical
//!   request becomes a waiter on the same [`Job`] and is answered by the
//!   single completion (counted `serve.coalesced`). The differential
//!   suite asserts N concurrent identical requests cost exactly one
//!   execution.
//! * **Deadlines.** Waiters time out (typed
//!   [`ServeError::DeadlineExpired`]) without cancelling the job — the
//!   run completes, lands in the cache, and pays for the *next* request.
//!   A worker is therefore never abandoned mid-run and never hung by a
//!   departed client.
//! * **Graceful drain.** [`Scheduler::drain`] stops admission
//!   ([`ServeError::ShuttingDown`]), lets workers finish every queued
//!   and in-flight job (completing their cache stores), then joins them.
//!
//! The pool runs *scenarios*, not arbitrary closures: workers call
//! [`RunSpec::execute`], which routes through the existing serial /
//! sharded substrate.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use telemetry::registry::{Counter, Gauge, Registry};

use crate::cache::{Lookup, ResultCache};
use crate::scenario::{RunArtifact, RunSpec};
use crate::ServeError;

/// How a run request may interact with the result cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Read and write: serve hits, memoize misses (the default).
    Use,
    /// Neither read nor write: always execute. `op:"replay"` uses this —
    /// a determinism proof must not be answered by the artifact it is
    /// trying to prove.
    Bypass,
    /// Write without reading: force recomputation and overwrite.
    Refresh,
}

/// Where a served artifact came from (reported in the result frame and
/// counted in telemetry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Verified cache entry; no execution.
    CacheHit,
    /// Fresh execution scheduled by this request.
    Miss,
    /// Answered by another request's in-flight execution.
    Coalesced,
    /// Cache deliberately bypassed (`Bypass`/`Refresh`).
    Bypassed,
}

impl Served {
    /// Wire spelling used in result frames.
    pub fn as_str(self) -> &'static str {
        match self {
            Served::CacheHit => "hit",
            Served::Miss => "miss",
            Served::Coalesced => "coalesced",
            Served::Bypassed => "bypass",
        }
    }
}

enum JobState {
    Pending,
    Done(Arc<RunArtifact>),
    Failed(String),
}

/// One scheduled execution; waiters block on `cv` until the worker
/// publishes a result.
struct Job {
    spec: RunSpec,
    key: u64,
    /// Whether the completed artifact should be written to the cache.
    store: bool,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl Job {
    fn wait(&self, deadline: Option<Instant>) -> Result<Arc<RunArtifact>, ServeError> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            match &*state {
                JobState::Done(artifact) => return Ok(Arc::clone(artifact)),
                JobState::Failed(msg) => return Err(ServeError::Internal(msg.clone())),
                JobState::Pending => {}
            }
            state = match deadline {
                None => match self.cv.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                },
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return Err(ServeError::DeadlineExpired);
                    }
                    match self.cv.wait_timeout(state, at - now) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    }
                }
            };
        }
    }

    fn fulfill(&self, result: Result<RunArtifact, ServeError>) {
        let mut state = lock_unpoisoned(&self.state);
        *state = match result {
            Ok(artifact) => JobState::Done(Arc::new(artifact)),
            Err(e) => JobState::Failed(e.to_string()),
        };
        self.cv.notify_all();
    }
}

/// A poisoned mutex only means another thread panicked while holding it;
/// the protected data is still structurally sound and the panic-free
/// discipline prefers recovery over propagation (same rationale as
/// `telemetry::Registry`).
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct SchedState {
    queue: VecDeque<Arc<Job>>,
    /// In-flight (queued or executing) cacheable jobs by request key —
    /// the coalescing index. Deterministically ordered, though order is
    /// never observable.
    inflight: BTreeMap<u64, Arc<Job>>,
    draining: bool,
}

/// Telemetry handles the scheduler updates (registered once at startup
/// so a zero-traffic `stats` snapshot already shows every counter).
#[derive(Clone)]
pub struct PoolMetrics {
    /// Fresh executions completed by workers.
    pub executed: Counter,
    /// Requests answered from the verified disk cache.
    pub cache_hits: Counter,
    /// Requests that scheduled a fresh execution.
    pub cache_misses: Counter,
    /// Cache entries refused by verification (torn/corrupt) and recomputed.
    pub cache_damaged: Counter,
    /// Requests answered by another request's in-flight execution.
    pub coalesced: Counter,
    /// Requests rejected at admission (queue full).
    pub rejected_overload: Counter,
    /// Waits abandoned at their deadline.
    pub deadline_expired: Counter,
    /// Workers currently executing a run.
    pub workers_busy: Gauge,
    /// Jobs currently queued behind the workers.
    pub queue_depth: Gauge,
}

impl PoolMetrics {
    /// Registers the pool's metrics in `reg`.
    ///
    /// # Errors
    ///
    /// [`telemetry::TelemetryError`] if a name is already taken with a
    /// different kind.
    pub fn register(reg: &Registry) -> Result<PoolMetrics, telemetry::TelemetryError> {
        Ok(PoolMetrics {
            executed: reg.counter("serve.executed")?,
            cache_hits: reg.counter("serve.cache.hits")?,
            cache_misses: reg.counter("serve.cache.misses")?,
            cache_damaged: reg.counter("serve.cache.damaged")?,
            coalesced: reg.counter("serve.coalesced")?,
            rejected_overload: reg.counter("serve.rejected.overload")?,
            deadline_expired: reg.counter("serve.rejected.deadline")?,
            workers_busy: reg.gauge("serve.workers.busy")?,
            queue_depth: reg.gauge("serve.queue.depth")?,
        })
    }
}

/// The bounded, coalescing scheduler plus its worker threads.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

struct Shared {
    state: Mutex<SchedState>,
    work_cv: Condvar,
    cache: ResultCache,
    queue_depth: usize,
    metrics: PoolMetrics,
}

impl Scheduler {
    /// Starts `workers` worker threads over `cache`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Internal`] if a worker thread cannot be spawned
    /// (startup-time resource exhaustion) — a daemon with no workers
    /// cannot serve, so this fails closed instead of limping.
    pub fn start(
        cache: ResultCache,
        workers: usize,
        queue_depth: usize,
        metrics: PoolMetrics,
    ) -> Result<Scheduler, ServeError> {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                inflight: BTreeMap::new(),
                draining: false,
            }),
            work_cv: Condvar::new(),
            cache,
            queue_depth,
            metrics,
        });
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let shared_i = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared_i))
                .map_err(|e| ServeError::Internal(format!("cannot spawn worker {i}: {e}")))?;
            handles.push(handle);
        }
        Ok(Scheduler { shared, workers: handles })
    }

    /// Admits, coalesces or rejects one run request, then blocks until
    /// the artifact is available or the deadline passes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::ShuttingDown`] during drain,
    /// [`ServeError::DeadlineExpired`] if `deadline` passes first, and
    /// [`ServeError::Internal`] if the execution itself failed.
    pub fn run(
        &self,
        spec: &RunSpec,
        mode: CacheMode,
        deadline: Option<Instant>,
    ) -> Result<(Arc<RunArtifact>, Served), ServeError> {
        let key = spec.request_key();
        // Draining refuses even cache hits: "shutting down" is a single
        // crisp fact about the daemon, not a per-path judgement call.
        if lock_unpoisoned(&self.shared.state).draining {
            return Err(ServeError::ShuttingDown);
        }
        if mode == CacheMode::Use {
            match self.shared.cache.lookup(key) {
                Lookup::Hit(hit) => {
                    self.shared.metrics.cache_hits.inc();
                    return Ok((
                        Arc::new(RunArtifact {
                            digest: hit.digest,
                            events: hit.events,
                            body: hit.body,
                        }),
                        Served::CacheHit,
                    ));
                }
                Lookup::Damaged { reason: _reason } => {
                    // Fail-closed: the entry is never served; recompute
                    // below and let the atomic store overwrite it.
                    self.shared.metrics.cache_damaged.inc();
                }
                Lookup::Miss => {}
            }
        }

        let (job, served) = {
            let mut state = lock_unpoisoned(&self.shared.state);
            if state.draining {
                return Err(ServeError::ShuttingDown);
            }
            if mode == CacheMode::Use {
                if let Some(job) = state.inflight.get(&key) {
                    self.shared.metrics.coalesced.inc();
                    (Arc::clone(job), Served::Coalesced)
                } else {
                    let job = self.enqueue(&mut state, spec, key, true)?;
                    self.shared.metrics.cache_misses.inc();
                    (job, Served::Miss)
                }
            } else {
                let store = mode == CacheMode::Refresh;
                let job = self.enqueue(&mut state, spec, key, store)?;
                (job, Served::Bypassed)
            }
        };
        self.shared.work_cv.notify_all();

        match job.wait(deadline) {
            Ok(artifact) => Ok((artifact, served)),
            Err(ServeError::DeadlineExpired) => {
                self.shared.metrics.deadline_expired.inc();
                Err(ServeError::DeadlineExpired)
            }
            Err(e) => Err(e),
        }
    }

    fn enqueue(
        &self,
        state: &mut SchedState,
        spec: &RunSpec,
        key: u64,
        store: bool,
    ) -> Result<Arc<Job>, ServeError> {
        if state.queue.len() >= self.shared.queue_depth {
            self.shared.metrics.rejected_overload.inc();
            return Err(ServeError::Overloaded { queue_depth: self.shared.queue_depth });
        }
        let job = Arc::new(Job {
            spec: spec.clone(),
            key,
            store,
            state: Mutex::new(JobState::Pending),
            cv: Condvar::new(),
        });
        state.queue.push_back(Arc::clone(&job));
        if store {
            // Only cache-visible jobs join the coalescing index: a
            // bypass run is a deliberate re-execution and must not be
            // answered by (or answer) anyone else. Keep the first
            // cacheable job if one is already indexed.
            state.inflight.entry(key).or_insert_with(|| Arc::clone(&job));
        }
        self.shared.metrics.queue_depth.set(state.queue.len() as f64);
        Ok(job)
    }

    /// Stops admission, finishes every queued and in-flight job, joins
    /// the workers. Idempotent.
    pub fn drain(&mut self) {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.draining = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked already published Failed to its
            // job; the drain still completes.
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock_unpoisoned(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    // Gauge updates happen under the state lock so the
                    // read-modify-write is serialized across workers.
                    shared.metrics.queue_depth.set(state.queue.len() as f64);
                    shared.metrics.workers_busy.set(shared.metrics.workers_busy.get() + 1.0);
                    break job;
                }
                if state.draining {
                    return;
                }
                state = match shared.work_cv.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };

        let result = job.spec.execute();
        if let Ok(artifact) = &result {
            shared.metrics.executed.inc();
            if job.store {
                // A failed store only loses memoization, never the
                // response; the artifact is still published to waiters.
                let _ = shared.cache.store(job.key, artifact);
            }
        }
        {
            let mut state = lock_unpoisoned(&shared.state);
            if let Some(indexed) = state.inflight.get(&job.key) {
                if Arc::ptr_eq(indexed, &job) {
                    state.inflight.remove(&job.key);
                }
            }
            shared.metrics.workers_busy.set((shared.metrics.workers_busy.get() - 1.0).max(0.0));
        }
        job.fulfill(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_spec_from;

    fn scheduler(name: &str, workers: usize, depth: usize) -> (Scheduler, PoolMetrics) {
        let dir = std::env::temp_dir().join("century-serve-pool-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let reg = Registry::new();
        let metrics = PoolMetrics::register(&reg).unwrap();
        (Scheduler::start(cache, workers, depth, metrics.clone()).unwrap(), metrics)
    }

    fn spec(json: &str) -> RunSpec {
        run_spec_from(&crate::json::parse_object(json).unwrap()).unwrap()
    }

    #[test]
    fn miss_then_hit_with_one_execution() {
        let (sched, metrics) = scheduler("hit", 1, 4);
        let s = spec("{\"seed\":11,\"years\":2}");
        let (a, served) = sched.run(&s, CacheMode::Use, None).unwrap();
        assert_eq!(served, Served::Miss);
        let (b, served) = sched.run(&s, CacheMode::Use, None).unwrap();
        assert_eq!(served, Served::CacheHit);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.body, b.body);
        assert_eq!(metrics.executed.get(), 1);
        assert_eq!(metrics.cache_hits.get(), 1);
        assert_eq!(metrics.cache_misses.get(), 1);
    }

    #[test]
    fn bypass_reexecutes_and_matches() {
        let (sched, metrics) = scheduler("bypass", 1, 4);
        let s = spec("{\"seed\":12,\"years\":2}");
        let (a, _) = sched.run(&s, CacheMode::Use, None).unwrap();
        let (b, served) = sched.run(&s, CacheMode::Bypass, None).unwrap();
        assert_eq!(served, Served::Bypassed);
        assert_eq!(a.digest, b.digest, "re-execution must re-prove the digest");
        assert_eq!(metrics.executed.get(), 2);
    }

    #[test]
    fn overload_is_rejected_typed() {
        let (sched, metrics) = scheduler("overload", 1, 0);
        // Queue depth 0: the admission check trips before any execution.
        let s = spec("{\"seed\":13,\"years\":1}");
        match sched.run(&s, CacheMode::Use, None) {
            Err(ServeError::Overloaded { queue_depth: 0 }) => {}
            other => panic!("expected overload rejection, got {other:?}"),
        }
        assert_eq!(metrics.rejected_overload.get(), 1);
        assert_eq!(metrics.executed.get(), 0);
    }

    #[test]
    fn drain_completes_queued_work() {
        let (mut sched, metrics) = scheduler("drain", 1, 4);
        let s = spec("{\"seed\":14,\"years\":1}");
        let (_, served) = sched.run(&s, CacheMode::Use, None).unwrap();
        assert_eq!(served, Served::Miss);
        sched.drain();
        assert_eq!(metrics.executed.get(), 1);
        match sched.run(&s, CacheMode::Use, None) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected shutting-down rejection, got {other:?}"),
        }
    }
}
