//! Energy harvesters: the "ambient batteries" of §1 and §4.1.
//!
//! The paper's devices power themselves "for literally as long as the
//! structure lasts" from sources like the corrosion of embedded rebar
//! (a cathodic-protection system repurposed as a battery — the authors'
//! IPSN ’21 work) or small PV. A [`Harvester`] reports instantaneous power
//! (W) as a function of simulation time; long-term source decline is part
//! of the model, because at 50-year horizons even "stable" sources drift.

use simcore::rng::Rng;
use simcore::time::{SimTime, DAY};

use crate::env::{clear_sky_irradiance, Cloudiness};

/// A power source sampled at simulation times.
pub trait Harvester {
    /// Instantaneous output power in watts at time `t`.
    ///
    /// Implementations must be deterministic given their internal state;
    /// stochastic weather is advanced explicitly via [`Harvester::advance_day`].
    fn power_w(&self, t: SimTime) -> f64;

    /// Advances day-scale internal state (weather, degradation). Called once
    /// per simulated day by the energy stepper.
    fn advance_day(&mut self, _rng: &mut Rng) {}

    /// A short display name for reports.
    fn name(&self) -> &'static str;
}

/// Small photovoltaic panel behind a harvesting regulator.
///
/// Output = irradiance × area × efficiency × cloud clearness × panel
/// degradation (`degradation_per_year`, default 0.5 %/yr — standard silicon
/// fade), floor 0 at night.
#[derive(Clone, Debug)]
pub struct SolarPanel {
    area_m2: f64,
    efficiency: f64,
    peak_w_m2: f64,
    seasonal_depth: f64,
    degradation_per_year: f64,
    clouds: Cloudiness,
    clearness: f64,
    age_days: u64,
}

impl SolarPanel {
    /// Creates a panel of `area_m2` at `efficiency` (0–1), with the given
    /// seasonal depth (0 = equatorial, 0.6 = high latitude) and cloud model.
    ///
    /// # Panics
    ///
    /// Panics on non-positive area or out-of-range efficiency.
    pub fn new(area_m2: f64, efficiency: f64, seasonal_depth: f64, clouds: Cloudiness) -> Self {
        assert!(area_m2 > 0.0 && area_m2.is_finite(), "area must be positive");
        assert!((0.0..=1.0).contains(&efficiency), "efficiency must be in [0,1]");
        assert!((0.0..=1.0).contains(&seasonal_depth), "seasonal depth must be in [0,1]");
        let clearness = clouds.current();
        SolarPanel {
            area_m2,
            efficiency,
            peak_w_m2: 1_000.0,
            seasonal_depth,
            degradation_per_year: 0.005,
            clouds,
            clearness,
            age_days: 0,
        }
    }

    /// A 5 × 5 cm indoor-grade cell on a streetlight in a temperate city —
    /// the scale of the paper's initial sensors.
    pub fn small_outdoor() -> Self {
        SolarPanel::new(0.0025, 0.18, 0.45, Cloudiness::temperate())
    }

    /// Panel degradation multiplier at the current age.
    fn degradation(&self) -> f64 {
        let years = self.age_days as f64 / 365.0;
        (1.0 - self.degradation_per_year).powf(years)
    }
}

impl Harvester for SolarPanel {
    fn power_w(&self, t: SimTime) -> f64 {
        let irr = clear_sky_irradiance(t, self.peak_w_m2, self.seasonal_depth);
        irr * self.area_m2 * self.efficiency * self.clearness * self.degradation()
    }

    fn advance_day(&mut self, rng: &mut Rng) {
        self.clearness = self.clouds.step(rng);
        self.age_days += 1;
    }

    fn name(&self) -> &'static str {
        "solar"
    }
}

/// Cathodic-protection "ambient battery": harvesting the potential
/// difference maintained by a structure's corrosion-protection system
/// (or the galvanic couple of rebar itself).
///
/// Characteristics per the paper's cited measurements: small (tens to
/// hundreds of µW), extremely steady on daily timescales, with a slow
/// decline as anodes deplete over decades. We model
/// `P(t) = p0 · exp(-t/τ)` with `τ` of order the structure's design life,
/// plus a mild temperature coefficient.
#[derive(Clone, Debug)]
pub struct CathodicProtection {
    p0_w: f64,
    tau_years: f64,
    day: u64,
}

impl CathodicProtection {
    /// Creates a source with initial power `p0_w` and depletion time
    /// constant `tau_years`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(p0_w: f64, tau_years: f64) -> Self {
        assert!(p0_w > 0.0 && p0_w.is_finite(), "initial power must be positive");
        assert!(tau_years > 0.0 && tau_years.is_finite(), "tau must be positive");
        CathodicProtection { p0_w, tau_years, day: 0 }
    }

    /// A bridge-scale installation: 250 µW initial, τ = 75 years — enough
    /// to outlast the bridge's 50-year median service life.
    pub fn bridge_default() -> Self {
        CathodicProtection::new(250e-6, 75.0)
    }
}

impl Harvester for CathodicProtection {
    fn power_w(&self, _t: SimTime) -> f64 {
        let years = self.day as f64 / 365.0;
        self.p0_w * (-years / self.tau_years).exp()
    }

    fn advance_day(&mut self, _rng: &mut Rng) {
        self.day += 1;
    }

    fn name(&self) -> &'static str {
        "cathodic-protection"
    }
}

/// Thermal-gradient harvester (TEG) on a structure with a diurnal
/// temperature differential: power follows the square of the gradient,
/// peaking twice daily when the structure-air differential is largest.
#[derive(Clone, Debug)]
pub struct ThermalGradient {
    peak_w: f64,
}

impl ThermalGradient {
    /// Creates a TEG with peak output `peak_w` at the maximum differential.
    ///
    /// # Panics
    ///
    /// Panics if `peak_w` is not positive and finite.
    pub fn new(peak_w: f64) -> Self {
        assert!(peak_w > 0.0 && peak_w.is_finite(), "peak power must be positive");
        ThermalGradient { peak_w }
    }
}

impl Harvester for ThermalGradient {
    fn power_w(&self, t: SimTime) -> f64 {
        // Differential ~ |sin| of the diurnal cycle: largest mid-morning and
        // mid-evening when air leads/lags the thermal mass.
        let sod = t.second_of_day() as f64 / DAY as f64;
        let diff = (core::f64::consts::TAU * sod).sin().abs();
        self.peak_w * diff * diff
    }

    fn name(&self) -> &'static str {
        "thermal-gradient"
    }
}

/// Traffic-vibration harvester: near-constant small power during the day,
/// quiet at night (traffic-following duty).
#[derive(Clone, Debug)]
pub struct Vibration {
    daytime_w: f64,
    night_fraction: f64,
}

impl Vibration {
    /// Creates a harvester producing `daytime_w` between 06:00 and 22:00 and
    /// `night_fraction` of it otherwise.
    ///
    /// # Panics
    ///
    /// Panics on non-positive power or out-of-range fraction.
    pub fn new(daytime_w: f64, night_fraction: f64) -> Self {
        assert!(daytime_w > 0.0 && daytime_w.is_finite(), "power must be positive");
        assert!((0.0..=1.0).contains(&night_fraction), "fraction must be in [0,1]");
        Vibration { daytime_w, night_fraction }
    }
}

impl Harvester for Vibration {
    fn power_w(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        if (6..22).contains(&h) {
            self.daytime_w
        } else {
            self.daytime_w * self.night_fraction
        }
    }

    fn name(&self) -> &'static str {
        "vibration"
    }
}

/// A composite of several sources feeding one buffer (e.g. PV by day,
/// vibration under traffic): powers add, day-state advances together.
pub struct Hybrid {
    sources: Vec<Box<dyn Harvester>>,
}

impl Hybrid {
    /// Combines the given sources.
    ///
    /// # Panics
    ///
    /// Panics if the source list is empty.
    pub fn new(sources: Vec<Box<dyn Harvester>>) -> Self {
        assert!(!sources.is_empty(), "a hybrid needs at least one source");
        Hybrid { sources }
    }
}

impl Harvester for Hybrid {
    fn power_w(&self, t: SimTime) -> f64 {
        self.sources.iter().map(|s| s.power_w(t)).sum()
    }

    fn advance_day(&mut self, rng: &mut Rng) {
        for s in &mut self.sources {
            s.advance_day(rng);
        }
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn solar_daylight_only() {
        let p = SolarPanel::small_outdoor();
        let noon = SimTime::ZERO + SimDuration::from_hours(12);
        let midnight = SimTime::ZERO;
        assert!(p.power_w(noon) > 0.0);
        assert_eq!(p.power_w(midnight), 0.0);
    }

    #[test]
    fn solar_power_scale_sane() {
        // 25 cm² at 18 % with ~0.65 clearness: noon summer ≈ 0.29 W.
        let p = SolarPanel::small_outdoor();
        let noon = SimTime::ZERO + SimDuration::from_hours(12);
        let w = p.power_w(noon);
        assert!(w > 0.1 && w < 0.5, "w {w}");
    }

    #[test]
    fn solar_degrades_over_decades() {
        let mut p = SolarPanel::small_outdoor();
        let mut rng = Rng::seed_from(1);
        let noon = SimTime::ZERO + SimDuration::from_hours(12);
        let fresh = p.power_w(noon);
        for _ in 0..(30 * 365) {
            p.advance_day(&mut rng);
        }
        // Freeze weather effects by comparing degradation directly.
        let degraded_factor = p.degradation();
        assert!((degraded_factor - 0.995f64.powf(30.0)).abs() < 1e-9);
        assert!(degraded_factor < 0.875 && degraded_factor > 0.80);
        assert!(fresh > 0.0);
    }

    #[test]
    fn cathodic_declines_exponentially() {
        let mut c = CathodicProtection::bridge_default();
        let mut rng = Rng::seed_from(2);
        let p_start = c.power_w(SimTime::ZERO);
        for _ in 0..(75 * 365) {
            c.advance_day(&mut rng);
        }
        let p_tau = c.power_w(SimTime::from_years(75));
        assert!((p_tau / p_start - (-1.0f64).exp()).abs() < 0.01);
        // Still delivers ~92 µW at τ — viable for a µW-class sensor.
        assert!(p_tau > 80e-6);
    }

    #[test]
    fn cathodic_is_steady_within_a_day() {
        let c = CathodicProtection::bridge_default();
        let a = c.power_w(SimTime::ZERO);
        let b = c.power_w(SimTime::ZERO + SimDuration::from_hours(12));
        assert_eq!(a, b);
    }

    #[test]
    fn thermal_peaks_twice_daily() {
        let t = ThermalGradient::new(1e-3);
        let morning = SimTime::ZERO + SimDuration::from_hours(6);
        let noon = SimTime::ZERO + SimDuration::from_hours(12);
        assert!(t.power_w(morning) > t.power_w(noon));
        assert!(t.power_w(noon) < 1e-9);
    }

    #[test]
    fn vibration_follows_traffic() {
        let v = Vibration::new(100e-6, 0.1);
        let day = SimTime::ZERO + SimDuration::from_hours(12);
        let night = SimTime::ZERO + SimDuration::from_hours(3);
        assert_eq!(v.power_w(day), 100e-6);
        assert!((v.power_w(night) - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SolarPanel::small_outdoor().name(), "solar");
        assert_eq!(CathodicProtection::bridge_default().name(), "cathodic-protection");
        assert_eq!(ThermalGradient::new(1.0).name(), "thermal-gradient");
        assert_eq!(Vibration::new(1.0, 0.0).name(), "vibration");
    }

    #[test]
    fn hybrid_sums_sources() {
        let h = Hybrid::new(vec![
            Box::new(Vibration::new(100e-6, 0.1)),
            Box::new(CathodicProtection::bridge_default()),
        ]);
        let day = SimTime::ZERO + SimDuration::from_hours(12);
        let expect = 100e-6 + CathodicProtection::bridge_default().power_w(day);
        assert!((h.power_w(day) - expect).abs() < 1e-12);
        assert_eq!(h.name(), "hybrid");
    }

    #[test]
    fn hybrid_advances_all_members() {
        let mut h = Hybrid::new(vec![
            Box::new(CathodicProtection::new(100e-6, 10.0)),
        ]);
        let mut rng = Rng::seed_from(5);
        let before = h.power_w(SimTime::ZERO);
        for _ in 0..3650 {
            h.advance_day(&mut rng);
        }
        let after = h.power_w(SimTime::from_years(10));
        assert!(after < before * 0.5, "member decline must show through");
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn hybrid_rejects_empty() {
        Hybrid::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn solar_rejects_zero_area() {
        SolarPanel::new(0.0, 0.2, 0.4, Cloudiness::temperate());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cathodic_rejects_zero_power() {
        CathodicProtection::new(0.0, 10.0);
    }
}
