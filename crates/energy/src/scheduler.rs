//! Energy-aware reporting schedulers.
//!
//! A fixed reporting cadence wastes the good months and browns out in the
//! bad ones. An energy-aware scheduler modulates the cadence with the
//! state of charge, the standard technique in long-lived intermittent
//! systems. This module provides both policies behind one trait and a
//! stepper that measures what each actually delivers over decades —
//! readings yielded, outages suffered — so the trade-off is quantified
//! rather than asserted.

use simcore::rng::Rng;
use simcore::time::{SimDuration, HOUR};

use crate::harvester::Harvester;
use crate::load::LoadProfile;
use crate::storage::Storage;

/// A reporting-rate policy: given the buffer's state of charge and how
/// many reports the stored energy could actually fund, how many reports to
/// attempt in the next hour.
pub trait Scheduler {
    /// Reports to attempt in the coming hour (0 = sleep through it).
    ///
    /// `affordable` is the number of reports the buffer could fund right
    /// now; a naive policy may ignore it (and pay the misses).
    fn reports_this_hour(&mut self, soc: f64, affordable: u32) -> u32;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Fixed cadence: `per_hour` reports, regardless of energy state.
#[derive(Clone, Copy, Debug)]
pub struct FixedRate {
    /// Reports per hour.
    pub per_hour: u32,
}

impl Scheduler for FixedRate {
    fn reports_this_hour(&mut self, _soc: f64, _affordable: u32) -> u32 {
        // Naive by design: reports on the clock whether or not the energy
        // is there — the policy this module exists to ablate against.
        self.per_hour
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// State-of-charge thresholded cadence:
///
/// * below `low_soc` — emergency rate (possibly 0);
/// * between — base rate;
/// * above `high_soc` — burst rate (spend the surplus on data).
#[derive(Clone, Copy, Debug)]
pub struct SocAdaptive {
    /// SoC below which the emergency rate applies.
    pub low_soc: f64,
    /// SoC above which the burst rate applies.
    pub high_soc: f64,
    /// Reports/hour in the emergency band.
    pub emergency_rate: u32,
    /// Reports/hour in the normal band.
    pub base_rate: u32,
    /// Reports/hour in the surplus band.
    pub burst_rate: u32,
}

impl SocAdaptive {
    /// A conservative default around a 1/hour base: halt below 15 %,
    /// quadruple above 80 %.
    pub fn default_hourly() -> Self {
        SocAdaptive {
            low_soc: 0.15,
            high_soc: 0.80,
            emergency_rate: 0,
            base_rate: 1,
            burst_rate: 4,
        }
    }
}

impl Scheduler for SocAdaptive {
    fn reports_this_hour(&mut self, soc: f64, affordable: u32) -> u32 {
        let band_rate = if soc < self.low_soc {
            self.emergency_rate
        } else if soc > self.high_soc {
            self.burst_rate
        } else {
            self.base_rate
        };
        // Energy-aware: never schedule a report the buffer cannot fund.
        band_rate.min(affordable)
    }

    fn name(&self) -> &'static str {
        "soc-adaptive"
    }
}

/// Outcome of a scheduled multi-year run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleReport {
    /// Reports successfully powered.
    pub reports_sent: u64,
    /// Report attempts that found insufficient energy.
    pub reports_missed: u64,
    /// Hours in which the sleep floor itself could not be covered.
    pub dead_hours: u64,
    /// Total hours simulated.
    pub hours: u64,
}

impl ScheduleReport {
    /// Fraction of attempted reports that were powered.
    pub fn success_rate(&self) -> f64 {
        let attempts = self.reports_sent + self.reports_missed;
        if attempts == 0 {
            return 1.0;
        }
        self.reports_sent as f64 / attempts as f64
    }

    /// Mean reports per day actually delivered.
    pub fn reports_per_day(&self) -> f64 {
        if self.hours == 0 {
            return 0.0;
        }
        self.reports_sent as f64 / (self.hours as f64 / 24.0)
    }
}

/// Steps harvester + storage + scheduler hour by hour over `horizon`.
///
/// Each hour: harvest; pay the sleep floor (a dead hour if it cannot be
/// paid); then attempt the scheduled number of reports, each costing the
/// profile's per-report energy.
pub fn run_schedule(
    harvester: &mut dyn Harvester,
    storage: &mut dyn Storage,
    scheduler: &mut dyn Scheduler,
    load: &LoadProfile,
    horizon: SimDuration,
    rng: &mut Rng,
) -> ScheduleReport {
    let hours = horizon.as_secs() / HOUR;
    // Decompose the profile: sleep floor + per-report energy (all periodic
    // tasks fire once per report under scheduler control).
    let sleep_per_hour = load.sleep_w * HOUR as f64;
    let per_report: f64 = load.tasks.iter().map(|t| t.activity.energy_j()).sum();
    let mut report = ScheduleReport { reports_sent: 0, reports_missed: 0, dead_hours: 0, hours };
    for h in 0..hours {
        let t = simcore::time::SimTime::from_secs(h * HOUR);
        if h > 0 && h % 24 == 0 {
            harvester.advance_day(rng);
            storage.advance_day();
        }
        let p = harvester.power_w(t + SimDuration::from_mins(30));
        storage.charge(p * HOUR as f64);
        if !storage.discharge(sleep_per_hour) {
            report.dead_hours += 1;
            continue;
        }
        let affordable = if per_report > 0.0 {
            (storage.stored_j() / per_report) as u32
        } else {
            u32::MAX
        };
        let want = scheduler.reports_this_hour(storage.soc(), affordable);
        for _ in 0..want {
            if storage.discharge(per_report) {
                report.reports_sent += 1;
            } else {
                // The buffer emptied mid-hour; further attempts this hour
                // would also fail, and real firmware knows it.
                report.reports_missed += 1;
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::SolarPanel;
    use crate::storage::Supercap;

    fn load() -> LoadProfile {
        // SF12-class reports: 1.48 s on air at 125 mW = 0.185 J each —
        // heavy enough that small buffers actually feel the nights.
        LoadProfile::transmit_only(SimDuration::from_hours(1), 1.48, 0.125)
    }

    fn run(scheduler: &mut dyn Scheduler, capacity_j: f64, years: u64, seed: u64) -> ScheduleReport {
        let mut h = SolarPanel::small_outdoor();
        let mut s = Supercap::new(capacity_j).precharged(0.5);
        let mut rng = Rng::seed_from(seed);
        run_schedule(
            &mut h,
            &mut s,
            scheduler,
            &load(),
            SimDuration::from_years(years),
            &mut rng,
        )
    }

    #[test]
    fn fixed_rate_attempts_every_hour() {
        let mut sched = FixedRate { per_hour: 1 };
        let rep = run(&mut sched, 100.0, 2, 1);
        assert_eq!(rep.hours, 2 * 365 * 24);
        assert_eq!(rep.reports_sent + rep.reports_missed, rep.hours - rep.dead_hours);
    }

    #[test]
    fn adaptive_misses_fewer_reports_on_small_buffers() {
        // With a tight buffer, fixed keeps attempting through the troughs
        // and misses; adaptive throttles instead.
        let cap = 1.0;
        let mut fixed = FixedRate { per_hour: 1 };
        let mut adaptive = SocAdaptive::default_hourly();
        let rf = run(&mut fixed, cap, 3, 2);
        let ra = run(&mut adaptive, cap, 3, 2);
        assert!(
            ra.success_rate() > rf.success_rate(),
            "adaptive {} vs fixed {}",
            ra.success_rate(),
            rf.success_rate()
        );
    }

    #[test]
    fn adaptive_bursts_deliver_more_data_on_big_buffers() {
        // With energy to spare, the burst band turns surplus into data.
        let cap = 200.0;
        let mut fixed = FixedRate { per_hour: 1 };
        let mut adaptive = SocAdaptive::default_hourly();
        let rf = run(&mut fixed, cap, 2, 3);
        let ra = run(&mut adaptive, cap, 2, 3);
        assert!(
            ra.reports_per_day() > rf.reports_per_day() * 1.5,
            "adaptive {} vs fixed {}",
            ra.reports_per_day(),
            rf.reports_per_day()
        );
    }

    #[test]
    fn zero_rate_scheduler_sends_nothing() {
        let mut sched = FixedRate { per_hour: 0 };
        let rep = run(&mut sched, 10.0, 1, 4);
        assert_eq!(rep.reports_sent, 0);
        assert_eq!(rep.reports_missed, 0);
        assert_eq!(rep.success_rate(), 1.0);
    }

    #[test]
    fn report_accounting_consistent() {
        let mut sched = SocAdaptive::default_hourly();
        let rep = run(&mut sched, 50.0, 1, 5);
        assert!(rep.reports_per_day() > 0.0);
        assert!(rep.success_rate() > 0.0 && rep.success_rate() <= 1.0);
        assert!(rep.dead_hours < rep.hours);
    }

    #[test]
    fn names_stable() {
        assert_eq!(FixedRate { per_hour: 1 }.name(), "fixed");
        assert_eq!(SocAdaptive::default_hourly().name(), "soc-adaptive");
    }
}
