//! Environmental traces: irradiance and temperature over decades.
//!
//! Harvest-powered devices live or die by their environment. The models
//! here are deliberately structural rather than meteorological: a clear-sky
//! solar geometry with diurnal and seasonal terms, an AR(1) cloudiness
//! process, and a seasonal temperature sinusoid. They capture the features
//! that matter to energy-neutral sizing — day/night, winter troughs, and
//! multi-day overcast runs — while staying deterministic per seed.

use simcore::rng::Rng;
use simcore::time::{SimTime, DAY, YEAR};

/// Clear-sky solar irradiance (W/m²) at a site of the given latitude-like
/// seasonality, at simulation time `t`.
///
/// The model: a half-sine diurnal profile between 06:00 and 18:00 local,
/// peak `peak_w_m2`, modulated seasonally by
/// `1 - seasonal_depth/2 · (1 - cos(2π·day/365))` — mid-winter days deliver
/// `1 - seasonal_depth` of the mid-summer peak. Day 0 is mid-summer.
pub fn clear_sky_irradiance(t: SimTime, peak_w_m2: f64, seasonal_depth: f64) -> f64 {
    let sod = t.second_of_day() as f64;
    let day_frac = sod / DAY as f64;
    // Daylight window 0.25..0.75 of the day.
    if !(0.25..0.75).contains(&day_frac) {
        return 0.0;
    }
    let diurnal = (core::f64::consts::PI * (day_frac - 0.25) / 0.5).sin();
    let doy = (t.as_secs() % YEAR) as f64 / YEAR as f64;
    let seasonal = 1.0 - seasonal_depth * 0.5 * (1.0 - (core::f64::consts::TAU * doy).cos());
    peak_w_m2 * diurnal * seasonal
}

/// An AR(1) cloudiness process: returns an attenuation factor in `[0, 1]`
/// (1 = clear, 0 = fully overcast), updated once per step.
///
/// Persistence `phi` close to 1 yields realistic multi-day overcast runs —
/// the sizing-critical feature.
#[derive(Clone, Debug)]
pub struct Cloudiness {
    phi: f64,
    sigma: f64,
    mean: f64,
    state: f64,
}

impl Cloudiness {
    /// Creates a process with persistence `phi ∈ [0,1)`, innovation
    /// standard deviation `sigma >= 0`, and long-run mean clearness
    /// `mean ∈ [0,1]`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn new(phi: f64, sigma: f64, mean: f64) -> Self {
        assert!((0.0..1.0).contains(&phi), "phi must be in [0,1)");
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        assert!((0.0..=1.0).contains(&mean), "mean must be in [0,1]");
        Cloudiness { phi, sigma, mean, state: mean }
    }

    /// A temperate default: persistence 0.8/day, sd 0.25, mean clearness 0.65.
    pub fn temperate() -> Self {
        Cloudiness::new(0.8, 0.25, 0.65)
    }

    /// A sunny default (desert southwest): mean clearness 0.85.
    pub fn sunny() -> Self {
        Cloudiness::new(0.7, 0.15, 0.85)
    }

    /// Advances one step (conventionally one day) and returns the new
    /// clearness factor in `[0, 1]`.
    pub fn step(&mut self, rng: &mut Rng) -> f64 {
        let noise = simcore::dist::standard_normal(rng) * self.sigma;
        self.state = self.mean + self.phi * (self.state - self.mean) + noise;
        self.state = self.state.clamp(0.0, 1.0);
        self.state
    }

    /// The current clearness without advancing.
    pub fn current(&self) -> f64 {
        self.state
    }
}

/// Ambient temperature (°C): seasonal sinusoid plus diurnal swing.
///
/// Day 0 is mid-summer (matching [`clear_sky_irradiance`]), daily peak at
/// 14:00.
pub fn ambient_temperature(
    t: SimTime,
    annual_mean_c: f64,
    seasonal_amplitude_c: f64,
    diurnal_amplitude_c: f64,
) -> f64 {
    let doy = (t.as_secs() % YEAR) as f64 / YEAR as f64;
    let seasonal = seasonal_amplitude_c * (core::f64::consts::TAU * doy).cos();
    let sod = t.second_of_day() as f64 / DAY as f64;
    // Peak at 14:00 = 14/24 of the day.
    let diurnal =
        diurnal_amplitude_c * (core::f64::consts::TAU * (sod - 14.0 / 24.0)).cos();
    annual_mean_c + seasonal + diurnal
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{SimDuration, SimTime};

    #[test]
    fn night_is_dark() {
        let midnight = SimTime::from_days(10);
        assert_eq!(clear_sky_irradiance(midnight, 1000.0, 0.5), 0.0);
        let late = midnight + SimDuration::from_hours(23);
        assert_eq!(clear_sky_irradiance(late, 1000.0, 0.5), 0.0);
    }

    #[test]
    fn noon_is_peak_in_summer() {
        let noon_summer = SimTime::ZERO + SimDuration::from_hours(12);
        let w = clear_sky_irradiance(noon_summer, 1000.0, 0.5);
        assert!((w - 1000.0).abs() < 1.0, "w {w}");
    }

    #[test]
    fn winter_noon_attenuated_by_seasonal_depth() {
        let winter_noon = SimTime::from_days(182) + SimDuration::from_hours(12);
        let w = clear_sky_irradiance(winter_noon, 1000.0, 0.5);
        assert!((w - 500.0).abs() < 5.0, "w {w}");
    }

    #[test]
    fn irradiance_never_negative() {
        for h in 0..24 {
            for d in [0, 90, 182, 270] {
                let t = SimTime::from_days(d) + SimDuration::from_hours(h);
                assert!(clear_sky_irradiance(t, 800.0, 0.6) >= 0.0);
            }
        }
    }

    #[test]
    fn cloudiness_stays_bounded_and_averages_near_mean() {
        let mut c = Cloudiness::temperate();
        let mut rng = Rng::seed_from(3);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let v = c.step(&mut rng);
            assert!((0.0..=1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        // The [0,1] clamp clips the near (upper) boundary more often than
        // the far one, biasing the realized mean slightly below the target.
        assert!((mean - 0.65).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn cloudiness_is_persistent() {
        // Lag-1 autocorrelation should be clearly positive.
        let mut c = Cloudiness::temperate();
        let mut rng = Rng::seed_from(4);
        let xs: Vec<f64> = (0..10_000).map(|_| c.step(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>();
        let rho = cov / var;
        assert!(rho > 0.5, "rho {rho}");
    }

    #[test]
    fn cloudiness_rejects_bad_params() {
        let err = std::panic::catch_unwind(|| Cloudiness::new(1.0, 0.1, 0.5));
        assert!(err.is_err());
    }

    #[test]
    fn temperature_seasonal_and_diurnal_structure() {
        // Summer (day 0) should be warmer than winter (day 182) at 14:00.
        let summer = SimTime::ZERO + SimDuration::from_hours(14);
        let winter = SimTime::from_days(182) + SimDuration::from_hours(14);
        let ts = ambient_temperature(summer, 18.0, 10.0, 6.0);
        let tw = ambient_temperature(winter, 18.0, 10.0, 6.0);
        assert!(ts > tw + 15.0, "summer {ts} winter {tw}");
        // 14:00 warmer than 02:00 the same day.
        let night = SimTime::ZERO + SimDuration::from_hours(2);
        assert!(ts > ambient_temperature(night, 18.0, 10.0, 6.0));
    }

    #[test]
    fn cloudiness_deterministic_per_seed() {
        let run = |seed| {
            let mut c = Cloudiness::sunny();
            let mut rng = Rng::seed_from(seed);
            (0..100).map(|_| c.step(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
