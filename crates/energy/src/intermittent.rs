//! Intermittent-computing runtime model.
//!
//! Batteryless devices die and resurrect with the energy supply. An
//! intermittent runtime checkpoints progress to non-volatile memory so work
//! survives power failures. This module models the classic trade-off:
//! checkpoint too often and overhead eats the budget; too rarely and every
//! power failure re-executes a long tail of lost work.
//!
//! The model is analytic-plus-Monte-Carlo over a capacitor-backed execution
//! window: each charge cycle provides `on_time_s` of execution; the task
//! needs `work_s` of cumulative progress; checkpoints cost `checkpoint_s`
//! and persist all progress made before them.

use simcore::rng::Rng;

/// Parameters of a checkpointed intermittent execution.
#[derive(Clone, Copy, Debug)]
pub struct IntermittentTask {
    /// Seconds of CPU progress the task needs in total.
    pub work_s: f64,
    /// Seconds of execution each charge cycle provides (may vary; this is
    /// the mean of an exponential if `jitter` is true).
    pub on_time_s: f64,
    /// Seconds consumed by taking one checkpoint.
    pub checkpoint_s: f64,
    /// Seconds of progress between checkpoints.
    pub checkpoint_interval_s: f64,
    /// If true, on-times are exponentially distributed around the mean
    /// (harvest turbulence); if false, they are fixed.
    pub jitter: bool,
}

impl IntermittentTask {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless all durations are positive and finite.
    pub fn validate(&self) {
        assert!(self.work_s > 0.0 && self.work_s.is_finite(), "work must be positive");
        assert!(self.on_time_s > 0.0 && self.on_time_s.is_finite(), "on-time must be positive");
        assert!(
            self.checkpoint_s >= 0.0 && self.checkpoint_s.is_finite(),
            "checkpoint cost must be >= 0"
        );
        assert!(
            self.checkpoint_interval_s > 0.0 && self.checkpoint_interval_s.is_finite(),
            "checkpoint interval must be positive"
        );
    }
}

/// Outcome of one simulated intermittent execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntermittentRun {
    /// Charge cycles (power-on windows) consumed.
    pub cycles: u64,
    /// Total on-time spent, including checkpoints and lost work.
    pub total_on_time_s: f64,
    /// On-time wasted re-executing lost progress.
    pub lost_s: f64,
    /// On-time spent writing checkpoints.
    pub checkpoint_overhead_s: f64,
}

impl IntermittentRun {
    /// Fraction of on-time that was useful forward progress.
    pub fn efficiency(&self, work_s: f64) -> f64 {
        if self.total_on_time_s <= 0.0 {
            return 0.0;
        }
        work_s / self.total_on_time_s
    }
}

/// Simulates one execution of `task` to completion.
///
/// Within each power-on window the runtime alternates progress and
/// checkpoints every `checkpoint_interval_s`; on power failure, progress
/// since the last checkpoint is lost.
pub fn run_to_completion(task: &IntermittentTask, rng: &mut Rng) -> IntermittentRun {
    task.validate();
    let mut persisted = 0.0;
    let mut run = IntermittentRun {
        cycles: 0,
        total_on_time_s: 0.0,
        lost_s: 0.0,
        checkpoint_overhead_s: 0.0,
    };
    // Bound runaway configurations (checkpoint interval unreachable within a
    // window would loop forever making no progress).
    let max_cycles = 10_000_000;
    while persisted < task.work_s {
        run.cycles += 1;
        if run.cycles > max_cycles {
            break;
        }
        let window = if task.jitter {
            -rng.next_f64_open().ln() * task.on_time_s
        } else {
            task.on_time_s
        };
        let mut remaining = window;
        let mut volatile = 0.0; // Progress since last checkpoint.
        loop {
            // Work until the next checkpoint or completion.
            let to_checkpoint = task.checkpoint_interval_s - volatile;
            let to_done = task.work_s - persisted - volatile;
            let next = to_checkpoint.min(to_done);
            if remaining >= next {
                remaining -= next;
                volatile += next;
                run.total_on_time_s += next;
                if persisted + volatile >= task.work_s {
                    persisted += volatile;
                    break;
                }
                // Take a checkpoint if we can afford it within the window.
                if remaining >= task.checkpoint_s {
                    remaining -= task.checkpoint_s;
                    run.total_on_time_s += task.checkpoint_s;
                    run.checkpoint_overhead_s += task.checkpoint_s;
                    persisted += volatile;
                    volatile = 0.0;
                } else {
                    // Power dies mid-checkpoint: the checkpoint fails,
                    // volatile progress is lost.
                    run.total_on_time_s += remaining;
                    run.checkpoint_overhead_s += remaining;
                    run.lost_s += volatile;
                    break;
                }
            } else {
                // Power failure mid-work: everything since the last
                // checkpoint is lost, including the partial step.
                run.total_on_time_s += remaining;
                run.lost_s += volatile + remaining;
                break;
            }
        }
    }
    run
}

/// Mean completion statistics over `n` Monte-Carlo runs.
pub fn mean_run(task: &IntermittentTask, rng: &mut Rng, n: usize) -> IntermittentRun {
    assert!(n > 0, "need at least one run");
    let mut acc = IntermittentRun {
        cycles: 0,
        total_on_time_s: 0.0,
        lost_s: 0.0,
        checkpoint_overhead_s: 0.0,
    };
    for _ in 0..n {
        let r = run_to_completion(task, rng);
        acc.cycles += r.cycles;
        acc.total_on_time_s += r.total_on_time_s;
        acc.lost_s += r.lost_s;
        acc.checkpoint_overhead_s += r.checkpoint_overhead_s;
    }
    IntermittentRun {
        cycles: acc.cycles / n as u64,
        total_on_time_s: acc.total_on_time_s / n as f64,
        lost_s: acc.lost_s / n as f64,
        checkpoint_overhead_s: acc.checkpoint_overhead_s / n as f64,
    }
}

/// Sweeps checkpoint intervals and returns `(interval, mean_total_on_time)`
/// pairs — the classic U-shaped overhead curve.
pub fn sweep_checkpoint_interval(
    base: &IntermittentTask,
    intervals_s: &[f64],
    rng: &mut Rng,
    n_per_point: usize,
) -> Vec<(f64, f64)> {
    intervals_s
        .iter()
        .map(|&iv| {
            let task = IntermittentTask { checkpoint_interval_s: iv, ..*base };
            let r = mean_run(&task, rng, n_per_point);
            (iv, r.total_on_time_s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> IntermittentTask {
        IntermittentTask {
            work_s: 10.0,
            on_time_s: 1.0,
            checkpoint_s: 0.01,
            checkpoint_interval_s: 0.25,
            jitter: false,
        }
    }

    #[test]
    fn deterministic_run_completes() {
        let mut rng = Rng::seed_from(1);
        let r = run_to_completion(&task(), &mut rng);
        assert!(r.cycles >= 10, "cycles {}", r.cycles);
        assert!(r.total_on_time_s >= 10.0);
        assert!(r.efficiency(10.0) > 0.5 && r.efficiency(10.0) <= 1.0);
    }

    #[test]
    fn no_checkpoint_cost_no_overhead() {
        let t = IntermittentTask { checkpoint_s: 0.0, ..task() };
        let mut rng = Rng::seed_from(2);
        let r = run_to_completion(&t, &mut rng);
        assert_eq!(r.checkpoint_overhead_s, 0.0);
    }

    #[test]
    fn long_windows_few_cycles() {
        let t = IntermittentTask { on_time_s: 100.0, ..task() };
        let mut rng = Rng::seed_from(3);
        let r = run_to_completion(&t, &mut rng);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.lost_s, 0.0);
    }

    #[test]
    fn jittered_runs_complete_too() {
        let t = IntermittentTask { jitter: true, ..task() };
        let mut rng = Rng::seed_from(4);
        let r = mean_run(&t, &mut rng, 200);
        assert!(r.total_on_time_s >= 10.0);
        assert!(r.lost_s > 0.0, "exponential windows must sometimes cut work short");
    }

    #[test]
    fn rare_checkpoints_lose_more_under_jitter() {
        let mut rng = Rng::seed_from(5);
        let frequent = IntermittentTask { checkpoint_interval_s: 0.1, jitter: true, ..task() };
        let rare = IntermittentTask { checkpoint_interval_s: 5.0, jitter: true, ..task() };
        let rf = mean_run(&frequent, &mut rng, 400);
        let rr = mean_run(&rare, &mut rng, 400);
        assert!(rr.lost_s > rf.lost_s, "rare {:.3} frequent {:.3}", rr.lost_s, rf.lost_s);
    }

    #[test]
    fn sweep_produces_u_shape_extremes() {
        // Very small intervals pay checkpoint overhead; very large lose work.
        let base = IntermittentTask { jitter: true, ..task() };
        let mut rng = Rng::seed_from(6);
        let pts = sweep_checkpoint_interval(&base, &[0.011, 0.3, 8.0], &mut rng, 400);
        assert_eq!(pts.len(), 3);
        let mid = pts[1].1;
        assert!(pts[0].1 > mid, "tiny interval should cost more: {pts:?}");
        assert!(pts[2].1 > mid, "huge interval should cost more: {pts:?}");
    }

    #[test]
    fn efficiency_zero_for_empty_run() {
        let r = IntermittentRun {
            cycles: 0,
            total_on_time_s: 0.0,
            lost_s: 0.0,
            checkpoint_overhead_s: 0.0,
        };
        assert_eq!(r.efficiency(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "work")]
    fn rejects_zero_work() {
        let t = IntermittentTask { work_s: 0.0, ..task() };
        run_to_completion(&t, &mut Rng::seed_from(7));
    }

    #[test]
    fn impossible_config_terminates() {
        // Window shorter than a single checkpoint interval step with a huge
        // checkpoint cost: progress persists never, guard must fire.
        let t = IntermittentTask {
            work_s: 10.0,
            on_time_s: 0.1,
            checkpoint_s: 10.0,
            checkpoint_interval_s: 0.05,
            jitter: false,
        };
        let mut rng = Rng::seed_from(8);
        let r = run_to_completion(&t, &mut rng);
        assert!(r.cycles >= 10_000_000, "guard should have fired");
    }
}
