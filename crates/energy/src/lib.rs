//! `energy` — the energy-harvesting substrate.
//!
//! §1 and §4.1 of *Century-Scale Smart Infrastructure* (HotOS ’21) rest on
//! batteryless, energy-harvesting edge devices: "ambient batteries" such as
//! the corrosion of embedded rebar, feeding transmit-only sensors with no
//! implicit battery lifetime. This crate models that stack:
//!
//! * [`mod@env`] — irradiance, cloud and temperature traces over decades.
//! * [`harvester`] — solar, cathodic-protection, thermal and vibration
//!   sources, with long-term decline.
//! * [`storage`] — supercapacitor and battery buffers with leakage and
//!   aging (batteries die at ~14 years; supercaps do not).
//! * [`load`] — device duty-cycle budgets (µW-class transmit-only nodes).
//! * [`budget`] — the harvest/consume stepper, outage statistics, and
//!   minimum-buffer sizing (exhibit E12).
//! * [`intermittent`] — checkpointed intermittent-computing runtime costs.
//! * [`scheduler`] — fixed vs energy-aware reporting policies, measured.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod env;
pub mod harvester;
pub mod intermittent;
pub mod load;
pub mod scheduler;
pub mod storage;

pub use budget::{simulate, BudgetReport};
pub use harvester::Harvester;
pub use load::LoadProfile;
pub use storage::Storage;
