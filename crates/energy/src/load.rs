//! Device load models: what the electronics spend.
//!
//! A transmit-only sensor's budget has four lines: sleep floor, periodic
//! sensing, occasional computation, and radio transmissions. [`LoadProfile`]
//! captures them; [`LoadProfile::mean_power_w`] gives the long-run draw that
//! energy-neutral sizing balances against harvest.

use simcore::time::SimDuration;

/// One discrete activity: a duration at a power level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activity {
    /// Active duration in seconds.
    pub duration_s: f64,
    /// Power draw while active, in watts.
    pub power_w: f64,
}

impl Activity {
    /// Creates an activity.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite inputs.
    pub fn new(duration_s: f64, power_w: f64) -> Self {
        assert!(duration_s >= 0.0 && duration_s.is_finite(), "duration must be >= 0");
        assert!(power_w >= 0.0 && power_w.is_finite(), "power must be >= 0");
        Activity { duration_s, power_w }
    }

    /// Energy per occurrence, in joules.
    pub fn energy_j(&self) -> f64 {
        self.duration_s * self.power_w
    }
}

/// A periodic duty-cycled load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicTask {
    /// The activity performed each period.
    pub activity: Activity,
    /// Period between activations.
    pub period: SimDuration,
}

impl PeriodicTask {
    /// Creates a periodic task.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(activity: Activity, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        PeriodicTask { activity, period }
    }

    /// Mean power contribution in watts.
    pub fn mean_power_w(&self) -> f64 {
        self.activity.energy_j() / self.period.as_secs() as f64
    }
}

/// A device's complete load profile.
#[derive(Clone, Debug)]
pub struct LoadProfile {
    /// Always-on sleep current draw, in watts.
    pub sleep_w: f64,
    /// Periodic tasks (sense, compute, transmit).
    pub tasks: Vec<PeriodicTask>,
}

impl LoadProfile {
    /// Creates a profile with the given sleep floor.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite sleep power.
    pub fn new(sleep_w: f64) -> Self {
        assert!(sleep_w >= 0.0 && sleep_w.is_finite(), "sleep power must be >= 0");
        LoadProfile { sleep_w, tasks: Vec::new() }
    }

    /// Adds a periodic task (builder style).
    pub fn with_task(mut self, task: PeriodicTask) -> Self {
        self.tasks.push(task);
        self
    }

    /// Long-run mean power in watts.
    pub fn mean_power_w(&self) -> f64 {
        self.sleep_w + self.tasks.iter().map(PeriodicTask::mean_power_w).sum::<f64>()
    }

    /// Energy consumed over `dt`, in joules (mean-rate approximation used by
    /// the daily stepper).
    pub fn energy_over(&self, dt: SimDuration) -> f64 {
        self.mean_power_w() * dt.as_secs() as f64
    }

    /// The paper's initial device archetype: a transmit-only sensor sending
    /// one packet per `report_interval`.
    ///
    /// Budget: 1 µW sleep, a 10 ms / 3 mW sensor read per report, and a
    /// radio transmission of `tx_airtime_s` at `tx_power_w` per report —
    /// callers get airtime from the `net` crate's PHY models.
    pub fn transmit_only(
        report_interval: SimDuration,
        tx_airtime_s: f64,
        tx_power_w: f64,
    ) -> Self {
        LoadProfile::new(1e-6)
            .with_task(PeriodicTask::new(Activity::new(0.010, 3e-3), report_interval))
            .with_task(PeriodicTask::new(
                Activity::new(tx_airtime_s, tx_power_w),
                report_interval,
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_energy() {
        let a = Activity::new(2.0, 0.5);
        assert!((a.energy_j() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_mean_power() {
        // 1 J every 100 s = 10 mW.
        let t = PeriodicTask::new(Activity::new(2.0, 0.5), SimDuration::from_secs(100));
        assert!((t.mean_power_w() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn profile_sums_contributions() {
        let p = LoadProfile::new(1e-6)
            .with_task(PeriodicTask::new(Activity::new(1.0, 1e-3), SimDuration::from_secs(1_000)))
            .with_task(PeriodicTask::new(Activity::new(0.5, 2e-3), SimDuration::from_secs(500)));
        // 1e-6 + 1e-6 + 2e-6 = 4e-6 W.
        assert!((p.mean_power_w() - 4e-6).abs() < 1e-15);
        assert!((p.energy_over(SimDuration::from_secs(1_000_000)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transmit_only_is_microwatt_class() {
        // Hourly LoRa-class packet: ~60 ms airtime at 120 mW.
        let p = LoadProfile::transmit_only(SimDuration::from_hours(1), 0.06, 0.12);
        let w = p.mean_power_w();
        assert!(w > 1e-6 && w < 10e-6, "w {w}");
    }

    #[test]
    fn faster_reporting_draws_more() {
        let hourly = LoadProfile::transmit_only(SimDuration::from_hours(1), 0.06, 0.12);
        let minutely = LoadProfile::transmit_only(SimDuration::from_mins(1), 0.06, 0.12);
        assert!(minutely.mean_power_w() > hourly.mean_power_w() * 10.0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        PeriodicTask::new(Activity::new(1.0, 1.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn negative_power_panics() {
        Activity::new(1.0, -1.0);
    }
}
