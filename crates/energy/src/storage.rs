//! Energy storage: capacitors, supercapacitors, and batteries.
//!
//! Storage is where the paper's longevity argument bites: batteries wear
//! out in about a decade (the 10–15-year folklore), while properly derated
//! capacitors do not. A [`Storage`] is a leaky energy bucket measured in
//! joules, with charge/discharge efficiency and age-dependent capacity.

/// An energy buffer with losses and aging. All energies in joules.
pub trait Storage {
    /// Usable capacity at the current age, in joules.
    fn capacity_j(&self) -> f64;

    /// Energy currently stored, in joules.
    fn stored_j(&self) -> f64;

    /// Deposits up to `j` joules (before efficiency loss); returns the
    /// amount actually added to the store.
    fn charge(&mut self, j: f64) -> f64;

    /// Withdraws `j` joules of *load* energy; returns `true` on success,
    /// `false` (and drains nothing) if the store cannot cover it.
    fn discharge(&mut self, j: f64) -> bool;

    /// Applies one day of self-discharge and aging.
    fn advance_day(&mut self);

    /// Fraction full, in `[0, 1]`.
    fn soc(&self) -> f64 {
        if self.capacity_j() <= 0.0 {
            0.0
        } else {
            (self.stored_j() / self.capacity_j()).clamp(0.0, 1.0)
        }
    }
}

/// A (super)capacitor: high cycle life, noticeable leakage, slow capacitance
/// fade. The harvesting archetype's buffer.
#[derive(Clone, Debug)]
pub struct Supercap {
    nominal_j: f64,
    stored: f64,
    /// Fraction of *stored energy* leaked per day.
    leak_per_day: f64,
    /// Fraction of capacity lost per year of aging.
    fade_per_year: f64,
    /// One-way charge efficiency.
    efficiency: f64,
    age_days: u64,
}

impl Supercap {
    /// Creates a supercapacitor with the given nominal capacity in joules.
    ///
    /// Defaults: 2 %/day leakage, 1 %/yr fade, 95 % charge efficiency —
    /// mid-range for modern EDLCs at low bias.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_j` is not positive and finite.
    pub fn new(nominal_j: f64) -> Self {
        assert!(nominal_j > 0.0 && nominal_j.is_finite(), "capacity must be positive");
        Supercap {
            nominal_j,
            stored: 0.0,
            leak_per_day: 0.02,
            fade_per_year: 0.01,
            efficiency: 0.95,
            age_days: 0,
        }
    }

    /// Overrides the daily leakage fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `leak` is in `[0, 1]`.
    pub fn with_leak_per_day(mut self, leak: f64) -> Self {
        assert!((0.0..=1.0).contains(&leak), "leak fraction must be in [0,1]");
        self.leak_per_day = leak;
        self
    }

    /// Starts the buffer at the given state of charge (0–1).
    pub fn precharged(mut self, soc: f64) -> Self {
        self.stored = self.capacity_j() * soc.clamp(0.0, 1.0);
        self
    }
}

impl Storage for Supercap {
    fn capacity_j(&self) -> f64 {
        let years = self.age_days as f64 / 365.0;
        self.nominal_j * (1.0 - self.fade_per_year).powf(years)
    }

    fn stored_j(&self) -> f64 {
        self.stored
    }

    fn charge(&mut self, j: f64) -> f64 {
        if j <= 0.0 {
            return 0.0;
        }
        let headroom = (self.capacity_j() - self.stored).max(0.0);
        let added = (j * self.efficiency).min(headroom);
        self.stored += added;
        added
    }

    fn discharge(&mut self, j: f64) -> bool {
        if j < 0.0 {
            return false;
        }
        if self.stored >= j {
            self.stored -= j;
            true
        } else {
            false
        }
    }

    fn advance_day(&mut self) {
        self.age_days += 1;
        self.stored *= 1.0 - self.leak_per_day;
        self.stored = self.stored.min(self.capacity_j());
    }
}

/// A small rechargeable battery: low leakage, limited calendar + cycle
/// life. Capacity fades with both age and throughput; once below
/// `end_of_life_fraction` of nominal it is considered dead (capacity 0).
#[derive(Clone, Debug)]
pub struct Battery {
    nominal_j: f64,
    stored: f64,
    calendar_fade_per_year: f64,
    /// Capacity fraction lost per full equivalent cycle.
    cycle_fade: f64,
    throughput_j: f64,
    efficiency: f64,
    end_of_life_fraction: f64,
    age_days: u64,
}

impl Battery {
    /// Creates a battery with the given nominal capacity in joules.
    ///
    /// Defaults: 2.5 %/yr calendar fade, 0.02 %/cycle fade, 90 % round-trip-
    /// half efficiency, EOL at 70 % capacity — typical small Li-ion.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_j` is not positive and finite.
    pub fn new(nominal_j: f64) -> Self {
        assert!(nominal_j > 0.0 && nominal_j.is_finite(), "capacity must be positive");
        Battery {
            nominal_j,
            stored: 0.0,
            calendar_fade_per_year: 0.025,
            cycle_fade: 0.0002,
            throughput_j: 0.0,
            efficiency: 0.90,
            end_of_life_fraction: 0.70,
            age_days: 0,
        }
    }

    /// Starts at the given state of charge (0–1).
    pub fn precharged(mut self, soc: f64) -> Self {
        self.stored = self.capacity_j() * soc.clamp(0.0, 1.0);
        self
    }

    /// True once capacity has faded below the end-of-life threshold.
    pub fn is_dead(&self) -> bool {
        self.raw_capacity() < self.nominal_j * self.end_of_life_fraction
    }

    fn raw_capacity(&self) -> f64 {
        let years = self.age_days as f64 / 365.0;
        let calendar = (1.0 - self.calendar_fade_per_year).powf(years);
        let cycles = self.throughput_j / self.nominal_j;
        let cycle = (1.0 - self.cycle_fade).powf(cycles);
        self.nominal_j * calendar * cycle
    }
}

impl Storage for Battery {
    fn capacity_j(&self) -> f64 {
        if self.is_dead() {
            0.0
        } else {
            self.raw_capacity()
        }
    }

    fn stored_j(&self) -> f64 {
        self.stored.min(self.capacity_j())
    }

    fn charge(&mut self, j: f64) -> f64 {
        if j <= 0.0 || self.is_dead() {
            return 0.0;
        }
        let headroom = (self.capacity_j() - self.stored).max(0.0);
        let added = (j * self.efficiency).min(headroom);
        self.stored += added;
        self.throughput_j += added;
        added
    }

    fn discharge(&mut self, j: f64) -> bool {
        if j < 0.0 || self.is_dead() {
            return false;
        }
        if self.stored_j() >= j {
            self.stored -= j;
            true
        } else {
            false
        }
    }

    fn advance_day(&mut self) {
        self.age_days += 1;
        // ~2 %/month self-discharge.
        self.stored *= 1.0 - 0.02 / 30.0;
        self.stored = self.stored.min(self.capacity_j());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercap_charge_respects_efficiency_and_headroom() {
        let mut c = Supercap::new(100.0);
        let added = c.charge(10.0);
        assert!((added - 9.5).abs() < 1e-12);
        assert!((c.stored_j() - 9.5).abs() < 1e-12);
        // Fill to the top; further charge is clamped.
        c.charge(1e6);
        assert!((c.stored_j() - 100.0).abs() < 1e-9);
        assert_eq!(c.charge(10.0), 0.0);
        assert!((c.soc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn supercap_discharge_all_or_nothing() {
        let mut c = Supercap::new(100.0).precharged(0.5);
        assert!(c.discharge(49.0));
        assert!(!c.discharge(10.0));
        assert!((c.stored_j() - 1.0).abs() < 1e-9, "stored {}", c.stored_j());
        assert!(!c.discharge(-1.0));
    }

    #[test]
    fn supercap_leaks_daily() {
        let mut c = Supercap::new(100.0).precharged(1.0);
        c.advance_day();
        assert!((c.stored_j() - 98.0).abs() < 1e-9);
    }

    #[test]
    fn supercap_fades_slowly() {
        let mut c = Supercap::new(100.0);
        for _ in 0..(25 * 365) {
            c.advance_day();
        }
        // 1 %/yr over 25 years ≈ 77.8 % remaining: still a working buffer.
        assert!((c.capacity_j() - 100.0 * 0.99f64.powf(25.0)).abs() < 0.01);
        assert!(c.capacity_j() > 75.0);
    }

    #[test]
    fn battery_dies_of_calendar_aging() {
        let mut b = Battery::new(1_000.0).precharged(1.0);
        let mut died_at_years = None;
        for day in 0..(30 * 365) {
            b.advance_day();
            if b.is_dead() {
                died_at_years = Some(day as f64 / 365.0);
                break;
            }
        }
        let died = died_at_years.expect("battery should die within 30 years");
        // ln(0.7)/ln(0.975) ≈ 14.1 years — matching the paper's folklore band.
        assert!(died > 10.0 && died < 15.0, "died at {died}");
        // Dead battery refuses service.
        assert_eq!(b.capacity_j(), 0.0);
        assert!(!b.discharge(1.0));
        assert_eq!(b.charge(10.0), 0.0);
    }

    #[test]
    fn battery_cycle_fade_accelerates_death() {
        let mut idle = Battery::new(1_000.0);
        let mut cycled = Battery::new(1_000.0);
        for _ in 0..(5 * 365) {
            idle.advance_day();
            cycled.advance_day();
            // One full cycle per day.
            cycled.charge(1_200.0);
            cycled.discharge(cycled.stored_j());
        }
        assert!(cycled.raw_capacity() < idle.raw_capacity());
    }

    #[test]
    fn battery_charge_tracks_throughput() {
        let mut b = Battery::new(100.0);
        b.charge(50.0);
        assert!((b.stored_j() - 45.0).abs() < 1e-12);
        assert!(b.discharge(20.0));
        assert!((b.stored_j() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn soc_bounds() {
        let c = Supercap::new(10.0).precharged(2.0);
        assert!((c.soc() - 1.0).abs() < 1e-12);
        let e = Supercap::new(10.0);
        assert_eq!(e.soc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn supercap_rejects_zero_capacity() {
        Supercap::new(0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn battery_rejects_negative_capacity() {
        Battery::new(-5.0);
    }
}
