//! Energy-neutral operation analysis (exhibit E12).
//!
//! Couples a [`crate::harvester::Harvester`], a [`crate::storage::Storage`]
//! and a [`crate::load::LoadProfile`] and steps them hour by hour
//! over years, tracking outages (intervals where the buffer cannot cover
//! the load). The output answers the §1 sizing question: *can a sensor
//! embedded in a bridge run off rebar corrosion for the structure's life?*

use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime, HOUR};

use crate::harvester::Harvester;
use crate::load::LoadProfile;
use crate::storage::Storage;

/// Result of an energy-neutrality simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetReport {
    /// Total simulated span.
    pub horizon: SimDuration,
    /// Total time the device was unable to operate.
    pub outage: SimDuration,
    /// Number of distinct outage intervals.
    pub outage_events: u64,
    /// Longest single outage.
    pub longest_outage: SimDuration,
    /// Total energy harvested into the buffer (J).
    pub harvested_j: f64,
    /// Total energy consumed by the load (J).
    pub consumed_j: f64,
    /// Minimum state of charge observed (0–1).
    pub min_soc: f64,
}

impl BudgetReport {
    /// Fraction of the horizon spent operating (1 = fully energy-neutral).
    pub fn availability(&self) -> f64 {
        if self.horizon.is_zero() {
            return 1.0;
        }
        1.0 - self.outage.as_secs() as f64 / self.horizon.as_secs() as f64
    }

    /// True if the device never browned out.
    pub fn is_energy_neutral(&self) -> bool {
        self.outage_events == 0
    }
}

/// Steps the harvest/consume loop at 1-hour resolution over `horizon`.
///
/// Each hour: harvest `P(t)·3600` J into storage, then attempt to withdraw
/// the hour's load. A failed withdrawal marks the hour as an outage (the
/// device browns out but retains no state — transmit-only devices have
/// nothing to lose but the readings). Weather and aging advance daily.
pub fn simulate(
    harvester: &mut dyn Harvester,
    storage: &mut dyn Storage,
    load: &LoadProfile,
    horizon: SimDuration,
    rng: &mut Rng,
) -> BudgetReport {
    let hours = horizon.as_secs() / HOUR;
    let hour = SimDuration::from_hours(1);
    let load_per_hour = load.energy_over(hour);
    let mut report = BudgetReport {
        horizon: SimDuration::from_secs(hours * HOUR),
        outage: SimDuration::ZERO,
        outage_events: 0,
        longest_outage: SimDuration::ZERO,
        harvested_j: 0.0,
        consumed_j: 0.0,
        min_soc: 1.0,
    };
    let mut in_outage = false;
    let mut current_outage = SimDuration::ZERO;
    for h in 0..hours {
        let t = SimTime::from_secs(h * HOUR);
        if h > 0 && h % 24 == 0 {
            harvester.advance_day(rng);
            storage.advance_day();
        }
        // Mid-hour sample approximates the hour's mean power.
        let p = harvester.power_w(t + SimDuration::from_mins(30));
        report.harvested_j += storage.charge(p * HOUR as f64);
        if storage.discharge(load_per_hour) {
            report.consumed_j += load_per_hour;
            if in_outage {
                in_outage = false;
                report.longest_outage = report.longest_outage.max(current_outage);
                current_outage = SimDuration::ZERO;
            }
        } else {
            if !in_outage {
                in_outage = true;
                report.outage_events += 1;
            }
            current_outage += hour;
            report.outage += hour;
        }
        report.min_soc = report.min_soc.min(storage.soc());
    }
    report.longest_outage = report.longest_outage.max(current_outage);
    report
}

/// Binary-searches the minimum storage capacity (J) for which the system is
/// energy-neutral over `horizon`, trying capacities in
/// `[lo_j, hi_j]` with `make_storage` constructing a fresh buffer and
/// `make_harvester` a fresh harvester per trial (so aging restarts).
///
/// Returns `None` if even `hi_j` browns out. The seed is fixed per trial so
/// all capacities see identical weather (common random numbers).
pub fn minimum_neutral_capacity(
    make_harvester: &dyn Fn() -> Box<dyn Harvester>,
    make_storage: &dyn Fn(f64) -> Box<dyn Storage>,
    load: &LoadProfile,
    horizon: SimDuration,
    lo_j: f64,
    hi_j: f64,
    seed: u64,
) -> Option<f64> {
    assert!(lo_j > 0.0 && hi_j > lo_j, "need 0 < lo < hi");
    let neutral = |cap: f64| {
        let mut h = make_harvester();
        let mut s = make_storage(cap);
        let mut rng = Rng::seed_from(seed);
        simulate(h.as_mut(), s.as_mut(), load, horizon, &mut rng).is_energy_neutral()
    };
    if !neutral(hi_j) {
        return None;
    }
    if neutral(lo_j) {
        return Some(lo_j);
    }
    let (mut lo, mut hi) = (lo_j, hi_j);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if neutral(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::{CathodicProtection, SolarPanel, Vibration};
    use crate::storage::{Battery, Supercap};

    fn tiny_load() -> LoadProfile {
        // ~3 µW mean: hourly short packet.
        LoadProfile::transmit_only(SimDuration::from_hours(1), 0.06, 0.12)
    }

    #[test]
    fn cathodic_bridge_sensor_is_energy_neutral_for_decades() {
        // 250 µW source >> 3 µW load: neutral over 50 y even as it declines.
        let mut h = CathodicProtection::bridge_default();
        let mut s = Supercap::new(50.0).precharged(0.5).with_leak_per_day(0.01);
        let mut rng = Rng::seed_from(11);
        let rep = simulate(&mut h, &mut s, &tiny_load(), SimDuration::from_years(50), &mut rng);
        assert!(rep.is_energy_neutral(), "outages {:?}", rep.outage_events);
        assert!(rep.harvested_j > rep.consumed_j);
        assert!((rep.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undersized_buffer_browns_out_at_night() {
        // Solar with a buffer too small to ride through the night at a
        // heavy load.
        let mut h = SolarPanel::small_outdoor();
        let mut s = Supercap::new(0.2); // 0.2 J: minutes of headroom.
        let heavy = LoadProfile::new(50e-6)
            .with_task(crate::load::PeriodicTask::new(
                crate::load::Activity::new(0.06, 0.12),
                SimDuration::from_mins(5),
            ));
        let mut rng = Rng::seed_from(12);
        let rep = simulate(&mut h, &mut s, &heavy, SimDuration::from_days(30), &mut rng);
        assert!(rep.outage_events > 0);
        assert!(rep.outage > SimDuration::ZERO);
        assert!(rep.longest_outage >= SimDuration::from_hours(1));
        assert!(rep.availability() < 1.0);
    }

    #[test]
    fn report_accounting_consistent() {
        let mut h = Vibration::new(100e-6, 0.1);
        let mut s = Supercap::new(10.0).precharged(1.0);
        let mut rng = Rng::seed_from(13);
        let rep = simulate(&mut h, &mut s, &tiny_load(), SimDuration::from_days(10), &mut rng);
        assert_eq!(rep.horizon, SimDuration::from_days(10));
        assert!(rep.min_soc >= 0.0 && rep.min_soc <= 1.0);
        assert!(rep.consumed_j > 0.0);
    }

    #[test]
    fn battery_death_causes_late_life_outage() {
        // A battery-buffered device with a weak harvester: once the battery
        // hits EOL (~14 y), service stops.
        let mut h = Vibration::new(5e-6, 0.5);
        let mut s = Battery::new(5_000.0).precharged(1.0);
        let mut rng = Rng::seed_from(14);
        let rep = simulate(&mut h, &mut s, &tiny_load(), SimDuration::from_years(20), &mut rng);
        assert!(!rep.is_energy_neutral());
        // Most of years 15-20 should be dark.
        assert!(rep.outage.as_years_f64() > 3.0, "outage {}", rep.outage);
    }

    #[test]
    fn minimum_capacity_search_brackets() {
        let load = tiny_load();
        let min = minimum_neutral_capacity(
            &|| Box::new(SolarPanel::small_outdoor()),
            &|j| Box::new(Supercap::new(j).precharged(1.0)),
            &load,
            SimDuration::from_years(2),
            0.05,
            500.0,
            77,
        );
        let min = min.expect("500 J must suffice for a 3 uW load");
        assert!(min > 0.05 && min < 500.0, "min {min}");
        // Verify the found capacity actually works and 1/4 of it fails.
        let check = |cap: f64| {
            let mut h = SolarPanel::small_outdoor();
            let mut s = Supercap::new(cap).precharged(1.0);
            let mut rng = Rng::seed_from(77);
            simulate(&mut h, &mut s, &load, SimDuration::from_years(2), &mut rng)
                .is_energy_neutral()
        };
        assert!(check(min * 1.01));
        assert!(!check(min * 0.25));
    }

    #[test]
    fn zero_horizon_is_trivially_available() {
        let mut h = Vibration::new(1e-6, 0.0);
        let mut s = Supercap::new(1.0);
        let mut rng = Rng::seed_from(15);
        let rep = simulate(&mut h, &mut s, &tiny_load(), SimDuration::ZERO, &mut rng);
        assert_eq!(rep.availability(), 1.0);
        assert!(rep.is_energy_neutral());
    }
}
