//! Technology sunsets: spectrum reclamation as an obsolescence process.
//!
//! §3.4: *"In some cases, such as the sunset of 2G wireless technologies,
//! device owners have no option: a fixed resource (spectrum) that they do
//! not own or control is taken away, and devices must be replaced."*
//!
//! A [`SunsetSchedule`] is the timeline of generation launches and sunsets;
//! [`stranding_events`] computes, for a fleet attached per-generation, when
//! and how many attachments are forcibly severed over a horizon.

use simcore::time::SimTime;

use crate::tech::CellularGen;

/// One forced-migration event: a generation sunsets, severing attachments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrandingEvent {
    /// When the sunset takes effect.
    pub at: SimTime,
    /// The generation being retired.
    pub generation: CellularGen,
    /// Number of attachments severed.
    pub stranded: u64,
}

/// A generation timeline. The default schedule is
/// [`CellularGen::window_years`]; tests and ablations can supply their own.
#[derive(Clone, Debug)]
pub struct SunsetSchedule {
    /// `(generation, sunset year relative to epoch)` pairs, sunset order.
    pub sunsets: Vec<(CellularGen, f64)>,
}

impl Default for SunsetSchedule {
    fn default() -> Self {
        let mut sunsets: Vec<(CellularGen, f64)> = CellularGen::ALL
            .into_iter()
            .map(|g| (g, g.window_years().1))
            .collect();
        sunsets.sort_by(|a, b| a.1.total_cmp(&b.1));
        SunsetSchedule { sunsets }
    }
}

impl SunsetSchedule {
    /// The sunset year of a generation, if it sunsets within the schedule.
    pub fn sunset_of(&self, g: CellularGen) -> Option<f64> {
        self.sunsets.iter().find(|&&(gen, _)| gen == g).map(|&(_, y)| y)
    }

    /// Number of sunsets within `[0, horizon_years)`.
    pub fn sunsets_within(&self, horizon_years: f64) -> usize {
        self.sunsets
            .iter()
            .filter(|&&(_, y)| (0.0..horizon_years).contains(&y))
            .count()
    }
}

/// Computes the stranding events for a fleet of `attached(gen)` gateway
/// attachments per generation over `horizon_years`.
///
/// Attachments to a sunsetting generation are severed at the sunset; the
/// caller decides whether they migrate (a cost) or strand their devices.
pub fn stranding_events(
    schedule: &SunsetSchedule,
    attached: impl Fn(CellularGen) -> u64,
    horizon_years: f64,
) -> Vec<StrandingEvent> {
    schedule
        .sunsets
        .iter()
        .filter(|&&(_, y)| (0.0..horizon_years).contains(&y))
        .map(|&(generation, y)| StrandingEvent {
            at: SimTime::from_secs((y * simcore::time::YEAR as f64) as u64),
            generation,
            stranded: attached(generation),
        })
        .filter(|e| e.stranded > 0)
        .collect()
}

/// The migrate-forward policy: attachments on a sunsetting generation move
/// to the newest generation in service. Returns, for each sunset within the
/// horizon, `(event, migrated_to)` — `None` when nothing newer exists and
/// the attachments are permanently stranded.
pub fn migrate_forward(
    schedule: &SunsetSchedule,
    initial_attachment: CellularGen,
    horizon_years: f64,
) -> Vec<(f64, Option<CellularGen>)> {
    let mut current = initial_attachment;
    let mut out = Vec::new();
    while let Some(sunset) = schedule.sunset_of(current) {
        if sunset >= horizon_years || sunset < 0.0 {
            break;
        }
        let next = CellularGen::newest_at(sunset);
        out.push((sunset, next));
        match next {
            Some(g) if g != current => current = g,
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_sorted() {
        let s = SunsetSchedule::default();
        for pair in s.sunsets.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(s.sunsets.len(), 4);
    }

    #[test]
    fn sunset_lookup() {
        let s = SunsetSchedule::default();
        assert_eq!(s.sunset_of(CellularGen::G2), Some(2.0));
        assert_eq!(s.sunset_of(CellularGen::G5), Some(32.0));
    }

    #[test]
    fn fifty_year_horizon_sees_all_four_sunsets() {
        let s = SunsetSchedule::default();
        assert_eq!(s.sunsets_within(50.0), 4);
        assert_eq!(s.sunsets_within(10.0), 1);
    }

    #[test]
    fn stranding_counts_attachments() {
        let s = SunsetSchedule::default();
        let events = stranding_events(
            &s,
            |g| match g {
                CellularGen::G3 => 120,
                CellularGen::G4 => 500,
                _ => 0,
            },
            50.0,
        );
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].generation, CellularGen::G3);
        assert_eq!(events[0].stranded, 120);
        assert_eq!(events[0].at.year(), 12);
        assert_eq!(events[1].stranded, 500);
    }

    #[test]
    fn migrate_forward_chains_until_nothing_newer() {
        let s = SunsetSchedule::default();
        let hops = migrate_forward(&s, CellularGen::G4, 50.0);
        // 4G dies at 22 -> move to 5G; 5G dies at 32 -> nothing newer.
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0], (22.0, Some(CellularGen::G5)));
        assert_eq!(hops[1].0, 32.0);
        assert_eq!(hops[1].1, None);
    }

    #[test]
    fn migrate_forward_within_short_horizon() {
        let s = SunsetSchedule::default();
        let hops = migrate_forward(&s, CellularGen::G4, 20.0);
        assert!(hops.is_empty(), "no sunsets for 4G inside 20 years");
    }

    #[test]
    fn no_events_for_empty_fleet() {
        let s = SunsetSchedule::default();
        assert!(stranding_events(&s, |_| 0, 50.0).is_empty());
    }
}
