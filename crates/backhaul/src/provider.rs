//! Ownership models: who runs the backhaul, and how well (§3.3.3).
//!
//! The paper's empirical claim: municipal networks are viable even for tiny
//! cities (Chanute, KS: 9,000 residents, 2 staff, profitable), and
//! privately-provided institutional service is chronically under-prioritized.
//! A [`Provider`] couples an ownership model with service-priority and
//! continuity parameters that the fleet simulation consumes.

use simcore::dist::Exponential;
use simcore::rng::Rng;

/// Who owns and operates a backhaul.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ownership {
    /// Commercial carrier / cable company.
    Commercial,
    /// City-owned utility network.
    Municipal,
    /// University or campus network (the paper's own 802.15.4 arm).
    Campus,
    /// Federated community network (Helium-style).
    Federated,
}

/// A backhaul provider's service characteristics.
#[derive(Clone, Copy, Debug)]
pub struct Provider {
    /// Ownership model.
    pub ownership: Ownership,
    /// Long-run availability (fraction of time up), excluding terminal exit.
    pub availability: f64,
    /// Mean time (years) until the provider exits the business, drops the
    /// product line, or otherwise terminates service permanently.
    pub mean_exit_years: f64,
    /// Whether institutional/IoT tenants get priority in repairs (the
    /// paper's under-served-institutional-networks observation).
    pub tenant_priority: bool,
}

impl Provider {
    /// A commercial ISP: high availability, but product lines churn
    /// (mean exit 15 y) and institutional tenants are low priority.
    pub fn commercial() -> Self {
        Provider {
            ownership: Ownership::Commercial,
            availability: 0.999,
            mean_exit_years: 15.0,
            tenant_priority: false,
        }
    }

    /// A municipal utility: comparable availability, effectively no exit
    /// risk on infrastructure timescales (mean 75 y), tenant priority.
    pub fn municipal() -> Self {
        Provider {
            ownership: Ownership::Municipal,
            availability: 0.998,
            mean_exit_years: 75.0,
            tenant_priority: true,
        }
    }

    /// A campus network: very stable, prioritized, slightly lower
    /// availability (maintenance windows).
    pub fn campus() -> Self {
        Provider {
            ownership: Ownership::Campus,
            availability: 0.997,
            mean_exit_years: 60.0,
            tenant_priority: true,
        }
    }

    /// A federated network: availability depends on hotspot churn; the
    /// *network* persists but any location's coverage is volatile, and the
    /// economic model itself is young (mean exit 12 y).
    pub fn federated() -> Self {
        Provider {
            ownership: Ownership::Federated,
            availability: 0.97,
            mean_exit_years: 12.0,
            tenant_priority: false,
        }
    }

    /// Samples the year (from epoch) at which this provider exits.
    ///
    /// # Panics
    ///
    /// Panics if `mean_exit_years` is not positive and finite (every
    /// built-in provider constructor sets a positive mean).
    #[allow(clippy::expect_used)]
    pub fn sample_exit_years(&self, rng: &mut Rng) -> f64 {
        Exponential::with_mean(self.mean_exit_years)
            // simlint: allow(P001, documented panic; provider constructors set positive means)
            .expect("mean_exit_years is positive")
            .sample(rng)
    }

    /// Probability the provider is still operating at year `t`.
    pub fn p_still_operating(&self, t_years: f64) -> f64 {
        (-t_years / self.mean_exit_years).exp()
    }

    /// Expected downtime (days/year) from availability alone.
    pub fn downtime_days_per_year(&self) -> f64 {
        (1.0 - self.availability) * 365.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordered_by_continuity() {
        let c = Provider::commercial();
        let m = Provider::municipal();
        let f = Provider::federated();
        assert!(m.mean_exit_years > c.mean_exit_years);
        assert!(c.mean_exit_years > f.mean_exit_years);
    }

    #[test]
    fn municipal_survives_50_years_more_often() {
        let m = Provider::municipal().p_still_operating(50.0);
        let c = Provider::commercial().p_still_operating(50.0);
        assert!(m > 0.5, "municipal {m}");
        assert!(c < 0.05, "commercial {c}");
    }

    #[test]
    fn exit_sampling_matches_mean() {
        let p = Provider::commercial();
        let mut rng = Rng::seed_from(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| p.sample_exit_years(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 15.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn downtime_arithmetic() {
        let p = Provider::federated();
        assert!((p.downtime_days_per_year() - 10.95).abs() < 0.01);
        assert!(Provider::commercial().downtime_days_per_year() < 0.5);
    }

    #[test]
    fn priority_flags() {
        assert!(Provider::municipal().tenant_priority);
        assert!(Provider::campus().tenant_priority);
        assert!(!Provider::commercial().tenant_priority);
        assert!(!Provider::federated().tenant_priority);
    }
}
