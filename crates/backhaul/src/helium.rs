//! The federated LoRa network (§4.2–4.4): Helium-style hotspot dynamics.
//!
//! The paper's second experimental arm rides a **semi-federated** network:
//! coverage is provided by other people's hotspots, paid per-packet with
//! prepaid data credits at a fixed price. The appeal is zero deployed
//! infrastructure; the risk is that local coverage is an emergent property
//! of strangers' hardware and incentives.
//!
//! [`HotspotPopulation`] models the local hotspot census year over year
//! (boom, churn, and possible bust), from which per-year delivery coverage
//! is derived. Credit economics live in [`econ::credits`]; this module
//! re-exports the paper's pricing for convenience.

use simcore::rng::Rng;

pub use econ::credits::{credits_for_packet, credits_for_schedule, paper_credit_price, Wallet};

/// Year-over-year dynamics of the hotspots audible from one deployment
/// site.
#[derive(Clone, Debug)]
pub struct HotspotPopulation {
    /// Hotspots currently in range.
    count: u32,
    /// Expected net growth per year during the boom phase (can be < 1 for
    /// decline), applied multiplicatively.
    boom_growth: f64,
    /// Year the boom ends and the network settles (or declines).
    boom_years: u32,
    /// Post-boom multiplicative drift per year.
    steady_growth: f64,
    /// Fraction of hotspots churning away each year (owner moves, unplugs).
    churn: f64,
    year: u32,
}

impl HotspotPopulation {
    /// Creates a population starting at `initial` hotspots in range.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative parameters.
    pub fn new(
        initial: u32,
        boom_growth: f64,
        boom_years: u32,
        steady_growth: f64,
        churn: f64,
    ) -> Self {
        assert!(boom_growth >= 0.0 && boom_growth.is_finite(), "growth must be >= 0");
        assert!(steady_growth >= 0.0 && steady_growth.is_finite(), "growth must be >= 0");
        assert!((0.0..=1.0).contains(&churn), "churn must be in [0,1]");
        HotspotPopulation {
            count: initial,
            boom_growth,
            boom_years,
            steady_growth,
            churn,
            year: 0,
        }
    }

    /// The paper-era shape: a handful of audible hotspots, strong boom for
    /// 5 years (+60 %/yr), then slight decline (−3 %/yr) with 20 % owner
    /// churn.
    pub fn emerging(initial: u32) -> Self {
        HotspotPopulation::new(initial, 1.6, 5, 0.97, 0.20)
    }

    /// Hotspots currently in range.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Simulation year (steps taken).
    pub fn year(&self) -> u32 {
        self.year
    }

    /// Advances one year: churn removes a binomial share, growth adds a
    /// Poisson-ish share (rounded deterministic expectation with a random
    /// remainder to stay integral and unbiased).
    pub fn step_year(&mut self, rng: &mut Rng) -> u32 {
        self.year += 1;
        // Churn each hotspot independently.
        let mut survivors = 0u32;
        for _ in 0..self.count {
            if !rng.chance(self.churn) {
                survivors += 1;
            }
        }
        let growth = if self.year <= self.boom_years {
            self.boom_growth
        } else {
            self.steady_growth
        };
        // Replacement/addition: survivors grow by `growth` relative to the
        // pre-churn count (new owners join independent of who left).
        let target = self.count as f64 * growth;
        let additions = (target - survivors as f64).max(0.0);
        let whole = additions.floor() as u32;
        let frac = additions - whole as f64;
        let extra = u32::from(rng.chance(frac));
        self.count = survivors + whole + extra;
        self.count
    }

    /// Overwrites the mutable census state — current count and years
    /// stepped — from a checkpoint. The growth/churn parameters are
    /// configuration and are rebuilt from it, not snapshotted.
    pub fn restore_census(&mut self, count: u32, year: u32) {
        self.count = count;
        self.year = year;
    }

    /// Chaos: an abrupt market collapse removes `fraction` of the current
    /// population at once (deterministic floor, no RNG draw so injection
    /// never perturbs the arm's random streams). Returns hotspots removed.
    pub fn collapse(&mut self, fraction: f64) -> u32 {
        let f = if fraction.is_finite() { fraction.clamp(0.0, 1.0) } else { 0.0 };
        let removed = (self.count as f64 * f).floor() as u32;
        self.count -= removed.min(self.count);
        removed
    }

    /// Probability that at least one hotspot decodes an uplink, given each
    /// in-range hotspot independently decodes with probability `p_each`.
    pub fn delivery_probability(&self, p_each: f64) -> f64 {
        let p = p_each.clamp(0.0, 1.0);
        1.0 - (1.0 - p).powi(self.count as i32)
    }

    /// Whether the site currently has any coverage at all.
    pub fn has_coverage(&self) -> bool {
        self.count > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boom_then_settle() {
        let mut pop = HotspotPopulation::emerging(4);
        let mut rng = Rng::seed_from(7);
        for _ in 0..5 {
            pop.step_year(&mut rng);
        }
        let after_boom = pop.count();
        assert!(after_boom > 8, "boom should grow the census: {after_boom}");
        for _ in 0..20 {
            pop.step_year(&mut rng);
        }
        let later = pop.count();
        assert!(later < after_boom * 2, "post-boom drift should not explode: {later}");
    }

    #[test]
    fn bust_scenario_loses_coverage() {
        // No growth at all, 30 % churn: coverage dies within ~15 years.
        let mut pop = HotspotPopulation::new(6, 0.0, 0, 0.0, 0.30);
        let mut rng = Rng::seed_from(8);
        let mut dark_year = None;
        for y in 1..=30 {
            pop.step_year(&mut rng);
            if !pop.has_coverage() {
                dark_year = Some(y);
                break;
            }
        }
        assert!(dark_year.is_some(), "population must die out");
        assert!(dark_year.unwrap() <= 15);
    }

    #[test]
    fn delivery_probability_rises_with_density() {
        let sparse = HotspotPopulation::new(1, 1.0, 0, 1.0, 0.0);
        let dense = HotspotPopulation::new(8, 1.0, 0, 1.0, 0.0);
        assert!(dense.delivery_probability(0.5) > sparse.delivery_probability(0.5));
        assert!((sparse.delivery_probability(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(dense.delivery_probability(0.0), 0.0);
        assert_eq!(dense.delivery_probability(1.0), 1.0);
    }

    #[test]
    fn zero_population_has_no_coverage() {
        let pop = HotspotPopulation::new(0, 1.5, 5, 1.0, 0.1);
        assert!(!pop.has_coverage());
        assert_eq!(pop.delivery_probability(0.9), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut pop = HotspotPopulation::emerging(5);
            let mut rng = Rng::seed_from(seed);
            (0..20).map(|_| pop.step_year(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn reexported_credit_math_available() {
        // The module's users reach credit pricing through this crate.
        assert_eq!(credits_for_packet(24), 1);
        let w = Wallet::provision_dollars(econ::money::Usd::from_dollars(5));
        assert_eq!(w.balance(), 500_000);
    }

    #[test]
    #[should_panic(expected = "churn")]
    fn rejects_bad_churn() {
        HotspotPopulation::new(1, 1.0, 1, 1.0, 1.5);
    }

    #[test]
    fn collapse_removes_fraction_without_rng() {
        let mut pop = HotspotPopulation::emerging(100);
        assert_eq!(pop.collapse(0.6), 60);
        assert_eq!(pop.count(), 40);
        // Out-of-range and non-finite fractions are clamped, not panics.
        assert_eq!(pop.collapse(2.0), 40);
        assert_eq!(pop.count(), 0);
        assert_eq!(pop.collapse(f64::NAN), 0);
        assert!(!pop.has_coverage());
    }
}
