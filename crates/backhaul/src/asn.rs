//! AS-diversity synthesis and analysis of the federated backhaul (§4.3).
//!
//! The paper measured the Helium network: *"Comcast, Spectrum, and Verizon
//! are the ISPs for roughly half of the 12,400 gateways with public IP
//! addresses"*, and (footnote 5) *"50 % of nodes belong to just ten ASes,
//! but the long tail extends to nearly 200 unique ASes."*
//!
//! A Zipf(rank) law with exponent 1 over 200 ASes reproduces the top-10 =
//! 50 % statistic almost exactly — this module synthesizes such a
//! population and computes the paper's statistics from it (exhibit E7).

use simcore::dist::Zipf;
use simcore::rng::Rng;

/// Paper constants for the Helium measurement.
pub mod paper {
    /// Gateways with public IP addresses at measurement time.
    pub const PUBLIC_GATEWAYS: u64 = 12_400;
    /// Unique ASes observed (the long tail, "nearly 200").
    pub const UNIQUE_ASES: usize = 200;
    /// Share of gateways in the top ten ASes.
    pub const TOP10_SHARE: f64 = 0.50;
}

/// A synthesized assignment of gateways to ASes.
#[derive(Clone, Debug)]
pub struct AsPopulation {
    /// `counts[i]` = gateways observed in the AS of rank `i + 1`.
    counts: Vec<u64>,
    total: u64,
}

impl AsPopulation {
    /// Synthesizes `gateways` gateways over `ases` ASes with Zipf exponent
    /// `s`, by sampling each gateway's AS independently.
    ///
    /// # Panics
    ///
    /// Panics if `ases` is zero or `s` is not positive and finite.
    #[allow(clippy::expect_used)]
    pub fn synthesize(gateways: u64, ases: usize, s: f64, rng: &mut Rng) -> Self {
        // simlint: allow(P001, documented panicking constructor; see # Panics)
        let zipf = Zipf::new(ases, s).expect("valid Zipf parameters");
        let mut counts = vec![0u64; ases];
        for _ in 0..gateways {
            let rank = zipf.sample(rng);
            counts[rank - 1] += 1;
        }
        AsPopulation { counts, total: gateways }
    }

    /// Synthesizes the paper's measured population: 12,400 gateways over
    /// 200 ASes at exponent 1.
    pub fn paper_shaped(rng: &mut Rng) -> Self {
        Self::synthesize(paper::PUBLIC_GATEWAYS, paper::UNIQUE_ASES, 1.0, rng)
    }

    /// Total gateways.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of ASes with at least one gateway.
    pub fn observed_ases(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Share of gateways in the `k` largest ASes (by observed count).
    pub fn top_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted.iter().take(k).sum();
        top as f64 / self.total as f64
    }

    /// The Herfindahl–Hirschman concentration index of the AS shares
    /// (0 = perfectly spread, 1 = single AS).
    pub fn hhi(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|&c| {
                let s = c as f64 / self.total as f64;
                s * s
            })
            .sum()
    }

    /// Gateways surviving if the top `k` ASes simultaneously drop service —
    /// the "how exposed is the backhaul to a few ISPs?" question the
    /// measurement raises.
    pub fn survivors_without_top(&self, k: usize) -> u64 {
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().skip(k).sum()
    }
}

/// ISP-level grouping: large ISPs operate several regional ASes, so the
/// paper's "Comcast, Spectrum, and Verizon are the ISPs for roughly half"
/// is measured at ISP granularity while footnote 5's top-10 figure is at
/// AS granularity. [`IspAssignment`] maps AS ranks to ISPs; the default
/// model gives the big three ISPs the top ASes round-robin (each operating
/// several regional networks), which reconciles both of the paper's
/// numbers simultaneously.
#[derive(Clone, Debug)]
pub struct IspAssignment {
    /// `owner[r]` = ISP id of the AS at rank `r + 1`.
    owner: Vec<usize>,
    /// Number of distinct ISPs.
    isps: usize,
}

impl IspAssignment {
    /// The big-`k` ISPs own the top `n_top` ASes round-robin; every other
    /// AS is its own ISP.
    pub fn big_k_own_top(k: usize, n_top: usize, total_ases: usize) -> Self {
        assert!(k >= 1, "need at least one big ISP");
        assert!(n_top <= total_ases, "top set cannot exceed the population");
        let mut owner = Vec::with_capacity(total_ases);
        for r in 0..total_ases {
            if r < n_top {
                owner.push(r % k);
            } else {
                owner.push(k + (r - n_top));
            }
        }
        let isps = k + (total_ases - n_top);
        IspAssignment { owner, isps }
    }

    /// The paper-shaped default: Comcast/Spectrum/Verizon-like big three
    /// splitting the top 10 ASes.
    pub fn paper_big_three(total_ases: usize) -> Self {
        Self::big_k_own_top(3, 10.min(total_ases), total_ases)
    }

    /// Number of distinct ISPs.
    pub fn isps(&self) -> usize {
        self.isps
    }

    /// Share of gateways carried by the `k` largest ISPs.
    pub fn top_isp_share(&self, pop: &AsPopulation, k: usize) -> f64 {
        if pop.total() == 0 {
            return 0.0;
        }
        let mut per_isp = vec![0u64; self.isps];
        for (r, &count) in pop.counts.iter().enumerate() {
            if r < self.owner.len() {
                per_isp[self.owner[r]] += count;
            }
        }
        per_isp.sort_unstable_by(|a, b| b.cmp(a));
        per_isp.iter().take(k).sum::<u64>() as f64 / pop.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_reproduces_top10_share() {
        let mut rng = Rng::seed_from(2021);
        let pop = AsPopulation::paper_shaped(&mut rng);
        assert_eq!(pop.total(), paper::PUBLIC_GATEWAYS);
        let share = pop.top_share(10);
        assert!(
            (share - paper::TOP10_SHARE).abs() < 0.03,
            "top-10 share {share} vs paper {}",
            paper::TOP10_SHARE
        );
    }

    #[test]
    fn paper_shape_long_tail_near_200() {
        let mut rng = Rng::seed_from(2022);
        let pop = AsPopulation::paper_shaped(&mut rng);
        let seen = pop.observed_ases();
        assert!((190..=200).contains(&seen), "observed {seen}");
    }

    #[test]
    fn shares_monotone_in_k() {
        let mut rng = Rng::seed_from(3);
        let pop = AsPopulation::paper_shaped(&mut rng);
        let s1 = pop.top_share(1);
        let s10 = pop.top_share(10);
        let s200 = pop.top_share(200);
        assert!(s1 < s10 && s10 < s200);
        assert!((s200 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_exponent_concentrates() {
        let mut rng = Rng::seed_from(4);
        let flat = AsPopulation::synthesize(10_000, 100, 0.2, &mut rng);
        let steep = AsPopulation::synthesize(10_000, 100, 1.5, &mut rng);
        assert!(steep.hhi() > flat.hhi() * 3.0);
        assert!(steep.top_share(5) > flat.top_share(5));
    }

    #[test]
    fn survivors_complement_top_share() {
        let mut rng = Rng::seed_from(5);
        let pop = AsPopulation::paper_shaped(&mut rng);
        let survivors = pop.survivors_without_top(10);
        let expect = (pop.total() as f64 * (1.0 - pop.top_share(10))).round() as u64;
        assert_eq!(survivors, expect);
        // Losing the top-10 ASes halves the network.
        assert!(survivors < pop.total() * 55 / 100);
        assert!(survivors > pop.total() * 45 / 100);
    }

    #[test]
    fn big_three_isps_carry_about_half() {
        // The paper's ISP-level measurement: Comcast/Spectrum/Verizon
        // ~50 % of gateways. With the big three splitting the top 10 ASes
        // of the Zipf(1) population, ISP-level top-3 equals AS-level
        // top-10 ≈ 50 %.
        let mut rng = Rng::seed_from(11);
        let pop = AsPopulation::paper_shaped(&mut rng);
        let isp = IspAssignment::paper_big_three(200);
        let share = isp.top_isp_share(&pop, 3);
        assert!((share - 0.50).abs() < 0.03, "top-3 ISP share {share}");
        // And it exceeds the AS-level top-3 share.
        assert!(share > pop.top_share(3) + 0.1);
    }

    #[test]
    fn isp_assignment_shape() {
        let a = IspAssignment::big_k_own_top(3, 10, 200);
        assert_eq!(a.isps(), 3 + 190);
        let solo = IspAssignment::big_k_own_top(1, 0, 5);
        assert_eq!(solo.isps(), 6);
    }

    #[test]
    fn empty_population() {
        let mut rng = Rng::seed_from(6);
        let pop = AsPopulation::synthesize(0, 10, 1.0, &mut rng);
        assert_eq!(pop.top_share(5), 0.0);
        assert_eq!(pop.hhi(), 0.0);
        assert_eq!(pop.observed_ases(), 0);
    }
}
