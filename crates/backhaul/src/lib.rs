//! `backhaul` — backhaul technologies, providers, and federated networks.
//!
//! §3.3 of *Century-Scale Smart Infrastructure* (HotOS ’21) is a survey of
//! how gateways reach the internet — fiber vs cellular economics, spectrum
//! sunsets, ownership models — and §4.3 adds a measurement of the Helium
//! network's backhaul diversity. This crate models all of it:
//!
//! * [`tech`] — technology catalogue with cost structure, revocability,
//!   and the cellular generation timeline.
//! * [`sunset`] — spectrum-sunset schedules and fleet stranding events.
//! * [`provider`] — ownership models (commercial / municipal / campus /
//!   federated) with continuity and priority parameters.
//! * [`helium`] — local hotspot-population dynamics for the federated arm,
//!   plus re-exported data-credit economics.
//! * [`asn`] — the paper's AS-diversity measurement, synthesized and
//!   analyzed (top-10 ASes ≈ 50 % of 12,400 gateways, ~200-AS tail).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod asn;
pub mod helium;
pub mod provider;
pub mod sunset;
pub mod tech;

pub use provider::{Ownership, Provider};
pub use sunset::SunsetSchedule;
pub use tech::{BackhaulTech, CellularGen};
