//! Backhaul technologies and their service properties (§3.3).
//!
//! The paper contrasts wired (fiber, Ethernet) and wireless (cellular
//! generations, WiMAX, federated LoRa) backhauls on three axes: capacity,
//! cost structure, and — decisive at century scale — whether the medium
//! itself can be *taken away* (spectrum reclamation) or merely go dark at
//! the far end (a wire keeps its trench).

use econ::cost::CostStream;
use econ::money::Usd;

/// Cellular generations with their (stylized, US-shaped) service windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellularGen {
    /// 2G GSM/CDMA.
    G2,
    /// 3G UMTS/EVDO.
    G3,
    /// 4G LTE.
    G4,
    /// 5G NR.
    G5,
}

impl CellularGen {
    /// All generations in launch order.
    pub const ALL: [CellularGen; 4] =
        [CellularGen::G2, CellularGen::G3, CellularGen::G4, CellularGen::G5];

    /// Years after the simulation epoch at which the generation launches
    /// and sunsets, shaped on the US historical record (2G: ~1995–2022,
    /// i.e. ~27-year service window; each later generation launches ~10
    /// years after the previous).
    ///
    /// The epoch is the deployment date; generation `G4` is taken as
    /// current at deployment (launched 10 years before epoch), `G5` as
    /// freshly launched.
    pub fn window_years(self) -> (f64, f64) {
        match self {
            CellularGen::G2 => (-25.0, 2.0),
            CellularGen::G3 => (-15.0, 12.0),
            CellularGen::G4 => (-10.0, 22.0),
            CellularGen::G5 => (0.0, 32.0),
        }
    }

    /// Whether the generation still carries traffic at year `t` (relative
    /// to the epoch).
    pub fn in_service(self, t_years: f64) -> bool {
        let (launch, sunset) = self.window_years();
        (launch..sunset).contains(&t_years)
    }

    /// The newest generation in service at year `t`, if any.
    pub fn newest_at(t_years: f64) -> Option<CellularGen> {
        CellularGen::ALL.into_iter().rev().find(|g| g.in_service(t_years))
    }
}

/// A backhaul technology choice for a gateway attachment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackhaulTech {
    /// Municipal or commercial fiber drop.
    Fiber,
    /// Cellular modem on a specific generation.
    Cellular(CellularGen),
    /// Campus/municipal Ethernet.
    Ethernet,
    /// Fixed WiMAX-class wireless (the Chanute, KS model).
    Wimax,
    /// Federated LoRa network (Helium-style) — the backhaul is opaque.
    FederatedLora,
}

impl BackhaulTech {
    /// Whether the technology can be *revoked* by a third party reclaiming
    /// a resource the subscriber never owned (spectrum). Wires cannot.
    pub fn revocable(self) -> bool {
        matches!(self, BackhaulTech::Cellular(_) | BackhaulTech::FederatedLora)
    }

    /// Whether service exists at year `t` relative to the epoch (only
    /// cellular generations expire on the technology level; other outages
    /// are provider-level events handled elsewhere).
    pub fn available(self, t_years: f64) -> bool {
        match self {
            BackhaulTech::Cellular(g) => g.in_service(t_years),
            _ => true,
        }
    }

    /// Default cost stream per gateway attachment over `years`:
    /// `(capex year 0, opex per year)` shaped on the paper's discussion —
    /// fiber is trench-heavy/cheap-to-run, cellular is the reverse, campus
    /// Ethernet is nearly free to the tenant, WiMAX sits between.
    pub fn default_costs(self) -> (Usd, Usd) {
        match self {
            // Drop cost dominated by the trench share; minimal opex.
            BackhaulTech::Fiber => (Usd::from_dollars(2_500), Usd::from_dollars(60)),
            // No build-out; subscription ~$20/mo per modem.
            BackhaulTech::Cellular(_) => (Usd::from_dollars(150), Usd::from_dollars(240)),
            // Existing plant; port + switch amortization.
            BackhaulTech::Ethernet => (Usd::from_dollars(300), Usd::from_dollars(30)),
            // Radio + tower share.
            BackhaulTech::Wimax => (Usd::from_dollars(900), Usd::from_dollars(120)),
            // Per-gateway cost borne by hotspot owners; tenant pays credits
            // (accounted per packet, not per attachment).
            BackhaulTech::FederatedLora => (Usd::ZERO, Usd::ZERO),
        }
    }

    /// Builds the yearly attachment cost stream over a horizon.
    pub fn cost_stream(self, years: usize) -> CostStream {
        let (capex, opex) = self.default_costs();
        CostStream::upfront_plus_recurring(capex, opex, years)
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            BackhaulTech::Fiber => "fiber",
            BackhaulTech::Cellular(CellularGen::G2) => "cellular-2g",
            BackhaulTech::Cellular(CellularGen::G3) => "cellular-3g",
            BackhaulTech::Cellular(CellularGen::G4) => "cellular-4g",
            BackhaulTech::Cellular(CellularGen::G5) => "cellular-5g",
            BackhaulTech::Ethernet => "ethernet",
            BackhaulTech::Wimax => "wimax",
            BackhaulTech::FederatedLora => "federated-lora",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_windows_ordered() {
        for pair in CellularGen::ALL.windows(2) {
            let (l0, s0) = pair[0].window_years();
            let (l1, s1) = pair[1].window_years();
            assert!(l0 < l1 && s0 < s1);
        }
    }

    #[test]
    fn g2_sunsets_early() {
        assert!(CellularGen::G2.in_service(0.0));
        assert!(!CellularGen::G2.in_service(3.0));
        assert!(CellularGen::G4.in_service(3.0));
    }

    #[test]
    fn newest_at_progression() {
        assert_eq!(CellularGen::newest_at(0.0), Some(CellularGen::G5));
        assert_eq!(CellularGen::newest_at(-12.0), Some(CellularGen::G3));
        assert_eq!(CellularGen::newest_at(-5.0), Some(CellularGen::G4));
        // After every window closes there is nothing (the model does not
        // invent 6G; the fleet layer handles post-horizon tech churn).
        assert_eq!(CellularGen::newest_at(40.0), None);
    }

    #[test]
    fn revocability_classification() {
        assert!(BackhaulTech::Cellular(CellularGen::G4).revocable());
        assert!(BackhaulTech::FederatedLora.revocable());
        assert!(!BackhaulTech::Fiber.revocable());
        assert!(!BackhaulTech::Ethernet.revocable());
        assert!(!BackhaulTech::Wimax.revocable());
    }

    #[test]
    fn availability_tracks_generation() {
        let g3 = BackhaulTech::Cellular(CellularGen::G3);
        assert!(g3.available(5.0));
        assert!(!g3.available(15.0));
        assert!(BackhaulTech::Fiber.available(500.0));
    }

    #[test]
    fn fiber_vs_cellular_cost_shape() {
        // The paper's §3.3 claim: fiber capex-heavy, cellular opex-heavy,
        // with a long-run crossover in cellular's cumulative cost.
        let fiber = BackhaulTech::Fiber.cost_stream(50);
        let cell = BackhaulTech::Cellular(CellularGen::G4).cost_stream(50);
        assert!(fiber.at(0) > cell.at(0));
        assert!(fiber.at(10) < cell.at(10));
        let crossover = cell.crossover_year(&fiber).expect("cellular must cross");
        assert!(crossover > 5 && crossover < 25, "crossover {crossover}");
        assert!(fiber.total() < cell.total());
    }

    #[test]
    fn labels_unique() {
        let mut labels = vec![
            BackhaulTech::Fiber.label(),
            BackhaulTech::Ethernet.label(),
            BackhaulTech::Wimax.label(),
            BackhaulTech::FederatedLora.label(),
        ];
        for g in CellularGen::ALL {
            labels.push(BackhaulTech::Cellular(g).label());
        }
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
