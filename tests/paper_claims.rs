//! Integration tests pinning every headline number the paper states.
//!
//! Each test names the paper section it reproduces. These are the
//! "EXPERIMENTS.md contract": if a model change breaks one of these, the
//! reproduction has drifted from the paper.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use century::presets::CityCensus;
use econ::credits::{credits_for_schedule, Wallet};
use econ::labor::recovery_effort_paper;
use econ::money::Usd;
use simcore::rng::Rng;
use simcore::time::SimDuration;

/// §1: "On average, wireless electronics devices are replaced every 50
/// months. On average, a bridge is replaced every 50 years." — a 12x gap.
#[test]
fn s1_lifetime_gap_is_12x() {
    let gap = reliability::mission::paper::lifetime_gap();
    assert!((gap - 12.0).abs() < 1e-9);
}

/// §1: LA has "over 320,000 utility poles, 61,315 intersections, and
/// 210,000 streetlights"; at 20 min/device, recovery needs "nearly
/// 200,000 person-hours".
#[test]
fn s1_la_recovery_effort() {
    let city = CityCensus::los_angeles();
    assert_eq!(city.utility_poles, 320_000);
    assert_eq!(city.intersections, 61_315);
    assert_eq!(city.streetlights, 210_000);
    let hours = recovery_effort_paper(city.total_mounts()).hours();
    assert!(hours > 190_000.0 && hours < 200_000.0, "hours {hours}");
}

/// §2: San Diego "installed 8,000 smart LEDs with 3,300 sensors";
/// deployments run 500-5,000 nodes with 2-7-year upgrade horizons.
#[test]
fn s2_deployment_presets() {
    let sd = century::presets::DeploymentPreset::san_diego();
    assert_eq!((sd.nodes, sd.sensors), (8_000, 3_300));
    assert_eq!(sd.upgrade_horizon_years, (2, 7));
    let typical = century::presets::DeploymentPreset::typical_today();
    assert!((500..=5_000).contains(&typical.nodes));
}

/// §3.3: the fiber/cellular cost structure produces a long-run crossover
/// (San Diego's planned cellular-to-wired transition).
#[test]
fn s33_cellular_crosses_fiber() {
    use backhaul::tech::{BackhaulTech, CellularGen};
    let fiber = BackhaulTech::Fiber.cost_stream(50);
    let cell = BackhaulTech::Cellular(CellularGen::G4).cost_stream(50);
    let y = cell.crossover_year(&fiber).expect("crossover exists");
    assert!(y < 20, "crossover year {y}");
    assert!(fiber.total() < cell.total());
}

/// §3.4: a tipping point always exists where owning beats renting, and it
/// falls with provider risk.
#[test]
fn s34_tipping_point_exists() {
    use econ::tipping::{tipping_fleet_size, Owned, ThirdParty};
    let third = ThirdParty {
        per_device_yearly: Usd::from_dollars(12),
        sunset_rate_per_year: 0.05,
        replacement_per_device: Usd::from_dollars(125),
    };
    let owned = Owned {
        buildout: Usd::from_dollars(500_000),
        yearly_ops: Usd::from_dollars(50_000),
        per_device_yearly: Usd::from_dollars(1),
    };
    let tp = tipping_fleet_size(&third, &owned, 50, 10_000_000).expect("tips");
    assert!(tp.fleet > 100 && tp.fleet < 100_000);
}

/// §4.3 footnote 5: "50% of nodes belong to just ten ASes, but the long
/// tail extends to nearly 200 unique ASes" of 12,400 public gateways.
#[test]
fn s43_helium_as_diversity() {
    let mut rng = Rng::seed_from(777);
    let pop = backhaul::asn::AsPopulation::paper_shaped(&mut rng);
    assert_eq!(pop.total(), 12_400);
    assert!((pop.top_share(10) - 0.50).abs() < 0.03, "{}", pop.top_share(10));
    assert!(pop.observed_ases() >= 185);
}

/// §4.4: "For one device to send one (up to 24-byte) packet every one hour
/// for 50 years will cost 438,000 data credits. We can provision a
/// dedicated wallet today with a conservative 500,000 data credits for
/// just $5 USD."
#[test]
fn s44_credit_arithmetic_exact() {
    let need = credits_for_schedule(24, SimDuration::from_hours(1), SimDuration::from_years(50));
    assert_eq!(need, 438_000);
    let wallet = Wallet::provision_dollars(Usd::from_dollars(5));
    assert_eq!(wallet.balance(), 500_000);
    assert!(wallet.balance() > need);
}

/// §4.4: "the maximum domain lease is 10 years" — the endpoint's one
/// certain recurring event.
#[test]
fn s44_domain_lease_ritual() {
    let ritual = fleet::cloud::Ritual::domain_lease();
    assert_eq!(ritual.period, SimDuration::from_years(10));
}

/// §4's top-level metric: "some data arrives at some interval of time up
/// to once a week" — the experiment sustains it for 50 years with
/// documented maintenance.
#[test]
fn s4_experiment_sustains_weekly_uptime() {
    let report = fleet::sim::FleetSim::run(fleet::sim::FleetConfig::paper_experiment(12345));
    for arm in &report.arms {
        assert!(
            arm.uptime() > 0.95,
            "{} uptime {} too low for a maintained deployment",
            arm.name,
            arm.uptime()
        );
    }
    // §4.4: "The end-to-end system will require maintenance before the
    // fifty year mark."
    assert!(report.diary.count(simcore::trace::Severity::Incident) > 0);
}

/// §4 under sharded execution: splitting the experiment across worker
/// threads (`run_sharded(4)`) must leave every paper number untouched —
/// the E7 AS-diversity exhibit computes identically before and after a
/// sharded run (no cross-thread perturbation of seeded streams), and the
/// sharded experiment itself digests identically to the serial §4 run.
#[test]
fn s4_paper_numbers_unchanged_under_sharded_execution() {
    let before = bench::exhibits::e7::compute(777);
    let serial = fleet::sim::FleetSim::run(fleet::sim::FleetConfig::paper_experiment(12345));
    let sharded =
        fleet::sim::FleetSim::run_sharded(fleet::sim::FleetConfig::paper_experiment(12345), 4)
            .expect("four shards is valid");
    assert_eq!(serial.digest(), sharded.digest(), "sharded §4 run drifted from serial");
    for (s, p) in serial.arms.iter().zip(&sharded.arms) {
        assert_eq!(s.weeks_up, p.weeks_up);
        assert_eq!(s.readings_delivered, p.readings_delivered);
        assert_eq!(s.spend, p.spend);
        assert!(p.uptime() > 0.95, "{} uptime {} under sharding", p.name, p.uptime());
    }
    let after = bench::exhibits::e7::compute(777);
    assert_eq!(before.total, after.total);
    assert_eq!(before.ases, after.ases);
    assert_eq!(before.survivors_without_top10, after.survivors_without_top10);
    assert!(before.top1.to_bits() == after.top1.to_bits());
    assert!(before.top3.to_bits() == after.top3.to_bits());
    assert!(before.top3_isp.to_bits() == after.top3_isp.to_bits());
    assert!(before.top10.to_bits() == after.top10.to_bits());
    assert!(before.hhi.to_bits() == after.hhi.to_bits());
}

/// §1 folklore band: the battery BOM's median life lands in roughly
/// 10-15 years; the harvesting BOM clearly exceeds it.
#[test]
fn s1_folklore_band_and_escape() {
    use reliability::system::bom;
    let env = bom::Environment::default();
    let mut rng = Rng::seed_from(99);
    let median = |b: &reliability::Block, rng: &mut Rng| {
        let mut v: Vec<f64> = (0..4_000).map(|_| b.sample_ttf(rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let bat = median(&bom::battery_node(&env), &mut rng);
    let har = median(&bom::harvesting_node(&env), &mut rng);
    assert!(bat > 6.0 && bat < 16.0, "battery median {bat}");
    assert!(har > bat * 1.3, "harvesting {har} vs battery {bat}");
}
