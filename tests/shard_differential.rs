//! Differential harness for sharded execution: the tentpole's
//! correctness gate.
//!
//! `FleetSim::run_sharded(k)` promises a run digest **bit-identical** to
//! the serial run for every seed and every shard count — with and without
//! fault injection. This suite grinds that promise against 8 seeds ×
//! k ∈ {1, 2, 3, 8} × {plain, full-intensity chaos}, mirroring the
//! queue-vs-heap differential test that guarded the timing-wheel swap:
//! the serial path is the reference implementation, the sharded path is
//! the optimisation under test, and the digest (ordered diary, spans,
//! per-arm ledgers, metric snapshot) is the equivalence oracle.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use chaos::FaultPlanBuilder;
use fleet::shard::run_sharded_forced;
use fleet::sim::{FleetConfig, FleetSim};

const SEEDS: [u64; 8] = [1, 2, 3, 7, 42, 97, 1001, 0xdead_beef];
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

#[test]
fn sharded_digest_matches_serial_across_seeds_and_k() {
    for seed in SEEDS {
        let serial = FleetSim::run(FleetConfig::paper_experiment(seed));
        for k in SHARD_COUNTS {
            // Forced: the 20-device paper fleet sits below the
            // small-fleet serial fallback, and this suite exists to
            // exercise the real multi-shard machinery.
            let sharded =
                run_sharded_forced(FleetConfig::paper_experiment(seed), k).unwrap();
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "seed {seed}, k={k}: sharded digest drifted from serial"
            );
            // The digest already folds these, but name the usual suspects
            // so a failure pinpoints itself.
            assert_eq!(serial.events_processed, sharded.events_processed, "seed {seed}, k={k}");
            assert_eq!(serial.diary.len(), sharded.diary.len(), "seed {seed}, k={k}");
            assert_eq!(serial.spans.len(), sharded.spans.len(), "seed {seed}, k={k}");
        }
    }
}

#[test]
fn sharded_digest_matches_serial_under_full_intensity_chaos() {
    for seed in SEEDS {
        let cfg = FleetConfig::paper_experiment(seed);
        let plan = FaultPlanBuilder::full(seed ^ 0xc4a0).build(&cfg, 1.0).unwrap();
        let serial = chaos::run_with_plan(cfg, plan.clone());
        for k in SHARD_COUNTS {
            let sharded = chaos::run_sharded_with_plan_forced(
                FleetConfig::paper_experiment(seed),
                plan.clone(),
                k,
            )
            .unwrap();
            assert_eq!(
                serial.digest(),
                sharded.digest(),
                "seed {seed}, k={k}, chaos=full@1.0: sharded digest drifted from serial"
            );
        }
    }
}

#[test]
fn sharded_profile_dispatch_counts_match_serial() {
    // events_processed equality is necessary but could mask compensating
    // errors; the per-kind dispatch breakdown must match too.
    let serial = FleetSim::run(FleetConfig::paper_experiment(11));
    let sharded = run_sharded_forced(FleetConfig::paper_experiment(11), 2).unwrap();
    for &(kind, n) in serial.profile.dispatches() {
        assert_eq!(
            sharded.profile.count(kind),
            n,
            "dispatch count for '{kind}' drifted under sharding"
        );
    }
    assert_eq!(
        serial.profile.total_dispatched(),
        sharded.profile.total_dispatched()
    );
}

#[test]
fn oversharded_run_still_matches_serial() {
    // k far beyond the arm count: surplus shards sit empty and the
    // degenerate split must not perturb anything.
    let serial = FleetSim::run(FleetConfig::paper_experiment(3));
    let sharded = run_sharded_forced(FleetConfig::paper_experiment(3), 64).unwrap();
    assert_eq!(serial.digest(), sharded.digest());
}
