//! Differential battery for the `century-serve` daemon: the wire is not
//! allowed to change the math.
//!
//! The serving contract under test (ISSUE: serve tentpole; DESIGN.md
//! §16): for every scenario, **cold serve ≡ cached serve ≡ direct
//! library call**, digest for digest, across seeds, chaos recipes and
//! shard counts — plus the operational half of the story: concurrent
//! identical requests coalesce to one execution, the cache survives a
//! daemon restart, and a torn cache entry is refused fail-closed and
//! transparently recomputed.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use std::collections::BTreeSet;
use std::path::PathBuf;

use serve::client::{Client, Response};
use serve::{Server, ServerConfig, CHAOS_PLAN_SALT};

use chaos::FaultPlanBuilder;
use fleet::sim::{FleetConfig, FleetSim};
use simcore::time::SimDuration;

const SEEDS: [u64; 8] = [1, 2, 3, 7, 42, 97, 1001, 0xdead_beef];
const YEARS: u64 = 6;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("century-serve-differential").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(cache: &str, workers: usize, queue_depth: usize) -> Server {
    let mut cfg = ServerConfig::local(temp_dir(cache));
    cfg.workers = workers;
    cfg.queue_depth = queue_depth;
    Server::start(cfg).expect("server starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("client connects")
}

/// Runs one request to completion and returns the terminal result object.
fn call_ok(client: &mut Client, request: &str) -> serve::json::Object {
    match client.call(request).expect("transport holds") {
        (_, Response::Result(obj)) => obj,
        (_, Response::Error { code, message }) => {
            panic!("request {request} refused: {code}: {message}")
        }
        (_, Response::Stream(_)) => unreachable!("call() only returns terminal frames"),
    }
}

fn u64_field(obj: &serve::json::Object, key: &str) -> u64 {
    obj.u64_field(key).unwrap_or_else(|| panic!("result missing u64 field {key:?}: {obj:?}"))
}

fn stat(client: &mut Client, name: &str) -> u64 {
    let obj = call_ok(client, "{\"op\":\"stats\"}");
    u64_field(&obj, name)
}

/// The direct library run the daemon must reproduce bit-for-bit: the
/// same config constructor and, for chaos, the same published plan
/// recipe (`FaultPlanBuilder::full(seed ^ CHAOS_PLAN_SALT)`).
fn direct_digest(seed: u64, chaos: bool) -> (u64, String) {
    let mut cfg = FleetConfig::paper_experiment(seed);
    cfg.horizon = SimDuration::from_years(YEARS);
    let report = if chaos {
        let plan = FaultPlanBuilder::full(seed ^ CHAOS_PLAN_SALT)
            .build(&cfg, 1.0)
            .expect("plan builds");
        chaos::run_with_plan(cfg, plan)
    } else {
        FleetSim::run(cfg)
    };
    (report.digest(), report.export_jsonl())
}

#[test]
fn cold_cached_and_direct_digests_agree_across_seeds_chaos_and_shards() {
    let server = start_server("matrix", 2, 16);
    let mut client = connect(&server);
    let mut cold_runs = 0u64;
    let mut bypass_runs = 0u64;
    let mut hits = 0u64;

    for seed in SEEDS {
        for chaos in [false, true] {
            let (want_digest, _) = direct_digest(seed, chaos);
            let chaos_field = if chaos { ",\"chaos\":\"full\"" } else { "" };

            // Cold: a genuine execution (cache miss).
            let req = format!("{{\"op\":\"run\",\"seed\":{seed},\"years\":{YEARS}{chaos_field}}}");
            let cold = call_ok(&mut client, &req);
            assert_eq!(cold.str_field("served"), Some("miss"), "first request must execute");
            assert_eq!(u64_field(&cold, "digest"), want_digest, "cold ≢ direct (seed {seed})");
            cold_runs += 1;

            // Cached: answered from disk, digest unchanged.
            let cached = call_ok(&mut client, &req);
            assert_eq!(cached.str_field("served"), Some("hit"), "second request must hit");
            assert_eq!(u64_field(&cached, "digest"), want_digest, "cached ≢ cold (seed {seed})");
            assert_eq!(u64_field(&cached, "events"), u64_field(&cold, "events"));
            hits += 1;

            // Sharded: k=4 must *execute* (bypass — the cache key ignores
            // shards, so a plain rerun would be a hit and prove nothing)
            // through the forced multi-shard path and re-derive the digest.
            let req4 = format!(
                "{{\"op\":\"run\",\"seed\":{seed},\"years\":{YEARS},\"shards\":4,\
                 \"cache\":\"bypass\"{chaos_field}}}"
            );
            let sharded = call_ok(&mut client, &req4);
            assert_eq!(sharded.str_field("served"), Some("bypass"));
            assert_eq!(u64_field(&sharded, "digest"), want_digest, "k=4 ≢ serial (seed {seed})");
            bypass_runs += 1;
        }
    }

    // The counters prove the execution accounting: every digest above was
    // produced by exactly one cold run, one disk hit, one bypass rerun.
    assert_eq!(stat(&mut client, "serve.executed"), cold_runs + bypass_runs);
    assert_eq!(stat(&mut client, "serve.cache.hits"), hits);
    assert_eq!(stat(&mut client, "serve.cache.misses"), cold_runs);
}

#[test]
fn streamed_body_is_the_direct_library_export() {
    let server = start_server("body", 1, 4);
    let mut client = connect(&server);
    let (want_digest, want_body) = direct_digest(42, false);

    let (streamed, terminal) = client
        .call(&format!("{{\"op\":\"run\",\"seed\":42,\"years\":{YEARS},\"stream\":true}}"))
        .expect("transport holds");
    let Response::Result(obj) = terminal else { panic!("expected result, got {terminal:?}") };
    assert_eq!(u64_field(&obj, "digest"), want_digest);

    let lines: Vec<&str> = streamed
        .iter()
        .map(|frame| frame.str_field("line").expect("body frame has a line"))
        .collect();
    let direct_lines: Vec<&str> = want_body.lines().collect();
    assert_eq!(lines, direct_lines, "streamed body ≢ FleetReport::export_jsonl");
    assert_eq!(u64_field(&obj, "body_lines"), lines.len() as u64);
}

#[test]
fn replay_reproves_a_cached_digest_by_reexecution() {
    let server = start_server("replay", 1, 4);
    let mut client = connect(&server);
    let req = format!("{{\"op\":\"run\",\"seed\":7,\"years\":{YEARS},\"chaos\":\"storm\"}}");
    let first = call_ok(&mut client, &req);

    // Replay is not a cache read: it re-executes and cross-checks.
    let replay = call_ok(
        &mut client,
        &format!("{{\"op\":\"replay\",\"seed\":7,\"years\":{YEARS},\"chaos\":\"storm\"}}"),
    );
    assert_eq!(replay.bool_field("verified"), Some(true));
    assert_eq!(u64_field(&replay, "cached_digest"), u64_field(&first, "digest"));
    assert_eq!(
        u64_field(&replay, "recomputed_digest"),
        u64_field(&first, "digest"),
        "replay must re-derive the cached digest from scratch"
    );
    assert_eq!(stat(&mut client, "serve.executed"), 2, "run + replay both execute");

    // Replaying a scenario that was never served is a typed refusal.
    let (_, resp) = client
        .call(&format!("{{\"op\":\"replay\",\"seed\":9999,\"years\":{YEARS}}}"))
        .expect("transport holds");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, "not_cached"),
        other => panic!("expected not_cached error, got {other:?}"),
    }
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_execution() {
    // One worker + a slow scenario forces the requests to overlap: the
    // first becomes the miss, the rest must attach to its in-flight job
    // (or, if they arrive after completion, hit the cache) — never a
    // second execution.
    let server = start_server("coalesce", 1, 32);
    let addr = server.addr().to_string();
    const N: usize = 8;
    let req = "{\"op\":\"run\",\"seed\":5,\"years\":400}";

    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("client connects");
                    let obj = call_ok(&mut client, req);
                    u64_field(&obj, "digest")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("requester thread")).collect()
    });

    let unique: BTreeSet<u64> = digests.iter().copied().collect();
    assert_eq!(unique.len(), 1, "all {N} concurrent requests must agree");

    let mut client = connect(&server);
    assert_eq!(stat(&mut client, "serve.executed"), 1, "exactly one execution for {N} requests");
    let accounted = stat(&mut client, "serve.cache.misses")
        + stat(&mut client, "serve.coalesced")
        + stat(&mut client, "serve.cache.hits");
    assert_eq!(accounted, N as u64, "every request is a miss, a coalesce or a hit");
    assert_eq!(stat(&mut client, "serve.cache.misses"), 1);
}

#[test]
fn cache_survives_daemon_restart() {
    let dir = temp_dir("restart");
    let req = format!("{{\"op\":\"run\",\"seed\":97,\"years\":{YEARS}}}");

    let cold_digest = {
        let mut cfg = ServerConfig::local(dir.clone());
        cfg.workers = 1;
        let mut server = Server::start(cfg).expect("first server starts");
        let mut client = connect(&server);
        let obj = call_ok(&mut client, &req);
        assert_eq!(obj.str_field("served"), Some("miss"));
        let digest = u64_field(&obj, "digest");
        drop(client);
        server.shutdown();
        digest
    };

    // A fresh daemon over the same directory serves the run from disk
    // without executing anything.
    let mut cfg = ServerConfig::local(dir);
    cfg.workers = 1;
    let server = Server::start(cfg).expect("second server starts");
    let mut client = connect(&server);
    let obj = call_ok(&mut client, &req);
    assert_eq!(obj.str_field("served"), Some("hit"), "restart must not forget the cache");
    assert_eq!(u64_field(&obj, "digest"), cold_digest);
    assert_eq!(stat(&mut client, "serve.executed"), 0, "the restarted daemon never executed");
}

#[test]
fn torn_cache_entry_is_refused_and_recomputed() {
    let dir = temp_dir("torn");
    let mut cfg = ServerConfig::local(dir.clone());
    cfg.workers = 1;
    let server = Server::start(cfg).expect("server starts");
    let mut client = connect(&server);

    let req = format!("{{\"op\":\"run\",\"seed\":1001,\"years\":{YEARS}}}");
    let cold = call_ok(&mut client, &req);
    let key_hex = cold.str_field("key_hex").expect("result carries key_hex").to_string();

    // Tear the entry the way a crashed write would: truncate mid-file.
    let entry = dir.join(format!("{key_hex}.run"));
    let bytes = std::fs::read(&entry).expect("entry exists");
    assert!(!bytes.is_empty());
    std::fs::write(&entry, &bytes[..bytes.len() / 3]).expect("truncate entry");

    // Fail-closed: the torn entry is never served; the scenario is
    // recomputed (a fresh miss) and the digest is unchanged.
    let again = call_ok(&mut client, &req);
    assert_eq!(again.str_field("served"), Some("miss"), "torn entry must not be a hit");
    assert_eq!(u64_field(&again, "digest"), u64_field(&cold, "digest"));
    assert_eq!(stat(&mut client, "serve.cache.damaged"), 1);

    // The recompute atomically repaired the entry.
    let repaired = call_ok(&mut client, &req);
    assert_eq!(repaired.str_field("served"), Some("hit"));
    assert_eq!(u64_field(&repaired, "digest"), u64_field(&cold, "digest"));
}
