//! Differential harness for aggregate weekly sampling: the statistics
//! correctness gate.
//!
//! The aggregate path (`SamplingMode::Aggregate`, DESIGN.md §13) replaces
//! the per-device weekly loop with population-level draws: one binomial
//! total per path cohort, rank-ordered share division, and bulk wallet
//! burns over the federated column. Its contract is *exact* equality with
//! the per-device reference implementation (`SamplingMode::Reference`,
//! behind the fleet crate's default `reference-mode` feature), which
//! recomputes everything naively — fresh participant scans, row
//! materialization, scalar wallet round-trips, per-device histogram
//! observes. The two share only the cohort RNG splits and the binomial
//! sampler, so digest equality proves the aggregate bookkeeping (the
//! incremental alive census, the stuck-device correction, the batched
//! burns and observes) — not merely that both call the same code.
//!
//! The grind mirrors `tests/shard_differential.rs`: 8 seeds ×
//! {plain, full-intensity chaos} × shard counts {1, 4}, comparing run
//! digests plus the specific ledgers the aggregate path batches: weekly
//! uptime, delivery counts, and wallet-exhaustion tallies (with their
//! diary weeks).

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use chaos::FaultPlanBuilder;
use fleet::sim::{FleetConfig, FleetReport, FleetSim, SamplingMode};

const SEEDS: [u64; 8] = [1, 2, 3, 7, 42, 97, 1001, 0xdead_beef];
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn cfg(seed: u64, sampling: SamplingMode) -> FleetConfig {
    FleetConfig::paper_experiment(seed).with_sampling(sampling)
}

/// The wall of equality the differential demands: the full digest, plus
/// the individually named ledgers the issue calls out so a failure names
/// the drifted quantity instead of just "digest mismatch".
fn assert_equivalent(agg: &FleetReport, reference: &FleetReport, ctx: &str) {
    assert_eq!(agg.arms.len(), reference.arms.len(), "{ctx}: arm count");
    for (a, r) in agg.arms.iter().zip(reference.arms.iter()) {
        assert_eq!(a.weeks_up, r.weeks_up, "{ctx}: '{}' weekly uptime ledger", a.name);
        assert_eq!(a.weeks_total, r.weeks_total, "{ctx}: '{}' weeks evaluated", a.name);
        assert_eq!(
            a.readings_delivered, r.readings_delivered,
            "{ctx}: '{}' delivery count",
            a.name
        );
        assert_eq!(
            a.readings_expected, r.readings_expected,
            "{ctx}: '{}' expected readings",
            a.name
        );
        assert_eq!(
            a.wallets_exhausted, r.wallets_exhausted,
            "{ctx}: '{}' wallet exhaustions",
            a.name
        );
    }
    // Wallet-exhaustion *weeks*: the diary timestamps, not just tallies.
    let exhaustion_weeks = |report: &FleetReport| -> Vec<(u64, String)> {
        report
            .diary
            .entries()
            .iter()
            .filter(|e| e.message.contains("wallet exhausted"))
            .map(|e| (e.at.as_secs(), e.message.clone()))
            .collect()
    };
    assert_eq!(
        exhaustion_weeks(agg),
        exhaustion_weeks(reference),
        "{ctx}: wallet-exhaustion diary weeks"
    );
    assert_eq!(
        agg.events_processed, reference.events_processed,
        "{ctx}: events processed"
    );
    assert_eq!(agg.digest(), reference.digest(), "{ctx}: run digest");
}

#[test]
fn aggregate_matches_reference_plain_across_seeds_and_k() {
    for seed in SEEDS {
        let reference = FleetSim::run(cfg(seed, SamplingMode::Reference));
        for k in SHARD_COUNTS {
            let agg = if k == 1 {
                FleetSim::run(cfg(seed, SamplingMode::Aggregate))
            } else {
                // Forced: the paper fleet sits below the small-fleet
                // serial fallback, and this suite wants the real
                // multi-shard aggregate path.
                fleet::shard::run_sharded_forced(cfg(seed, SamplingMode::Aggregate), k).unwrap()
            };
            assert_equivalent(&agg, &reference, &format!("seed {seed}, plain, k={k}"));
        }
    }
}

#[test]
fn aggregate_matches_reference_under_full_chaos_across_seeds_and_k() {
    for seed in SEEDS {
        // The fault plan is built once against the aggregate config and
        // replayed verbatim into both modes: same faults, same instants.
        let plan = FaultPlanBuilder::full(seed ^ 0xa66e)
            .build(&cfg(seed, SamplingMode::Aggregate), 1.0)
            .unwrap();
        let reference = chaos::run_with_plan(cfg(seed, SamplingMode::Reference), plan.clone());
        for k in SHARD_COUNTS {
            let agg = if k == 1 {
                chaos::run_with_plan(cfg(seed, SamplingMode::Aggregate), plan.clone())
            } else {
                chaos::run_sharded_with_plan_forced(
                    cfg(seed, SamplingMode::Aggregate),
                    plan.clone(),
                    k,
                )
                .unwrap()
            };
            assert_equivalent(&agg, &reference, &format!("seed {seed}, chaos=full@1.0, k={k}"));
        }
    }
}

#[test]
fn sharded_aggregate_matches_serial_aggregate() {
    // The shard differential, re-run over the aggregate path: splitting
    // an aggregate run across workers must not move a single draw.
    for seed in [1_u64, 42] {
        let serial = FleetSim::run(cfg(seed, SamplingMode::Aggregate));
        for k in [2_usize, 4, 8] {
            let sharded =
                fleet::shard::run_sharded_forced(cfg(seed, SamplingMode::Aggregate), k).unwrap();
            assert_eq!(
                sharded.digest(),
                serial.digest(),
                "seed {seed}, k={k}: sharded aggregate digest drifted from serial"
            );
        }
    }
}

#[test]
fn aggregate_differs_from_legacy_sampling() {
    // Sanity that the differential is not vacuous at the mode level:
    // aggregate draws come from a different RNG discipline than the
    // legacy per-device loop, so the two must disagree somewhere across
    // these seeds. (Aggregate ≡ Reference is the contract; Aggregate ≡
    // Legacy would mean the new path never actually ran.)
    let disagrees = SEEDS.iter().any(|&seed| {
        let legacy = FleetSim::run(cfg(seed, SamplingMode::Legacy));
        let agg = FleetSim::run(cfg(seed, SamplingMode::Aggregate));
        legacy.digest() != agg.digest()
    });
    assert!(disagrees, "aggregate sampling never diverged from legacy — mode switch inert?");
}
