//! Integration tests over the exhibit suite: every table/figure renders
//! and reproduces its claimed shape at the default seed.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

#[test]
fn every_exhibit_renders_nonempty() {
    for id in bench::exhibits::ALL {
        let text = bench::exhibits::render(id, 2021)
            .unwrap_or_else(|| panic!("exhibit {id} unknown"));
        assert!(text.len() > 100, "exhibit {id} suspiciously short");
        assert!(
            text.to_lowercase().contains(&id.to_lowercase()),
            "exhibit {id} must name itself"
        );
    }
}

#[test]
fn unknown_exhibit_is_none() {
    assert!(bench::exhibits::render("e99", 1).is_none());
    assert!(bench::ablations::render("a99", 1).is_none());
}

#[test]
fn every_ablation_renders_nonempty() {
    for id in bench::ablations::ALL {
        let text = bench::ablations::render(id, 2021)
            .unwrap_or_else(|| panic!("ablation {id} unknown"));
        assert!(text.len() > 100, "ablation {id} suspiciously short");
        assert!(
            text.to_lowercase().contains(&id.to_lowercase()),
            "ablation {id} must name itself"
        );
    }
}

#[test]
fn exhibits_deterministic_per_seed() {
    for id in ["e1", "e7", "f1"] {
        let a = bench::exhibits::render(id, 7).expect("known id");
        let b = bench::exhibits::render(id, 7).expect("known id");
        assert_eq!(a, b, "exhibit {id} must be reproducible");
    }
}

#[test]
fn e2_shape_holds() {
    let e = bench::exhibits::e2::compute(1);
    assert!((e.nominal_hours - 197_105.0).abs() < 1.0);
    assert!(e.batched_hours < e.reactive_hours);
}

#[test]
fn e5_and_e6_shapes_hold() {
    let e5 = bench::exhibits::e5::compute();
    assert!(e5.crossover_year.is_some());
    let e6 = bench::exhibits::e6::compute();
    assert!(e6.tipping_fleet.is_some());
}

#[test]
fn e8_exact_numbers_hold() {
    let e8 = bench::exhibits::e8::compute();
    assert_eq!(e8.fifty_year_credits, 438_000);
    assert_eq!(e8.wallet_credits, 500_000);
}

#[test]
fn e9_uptime_above_ninety_five_percent() {
    let out = bench::exhibits::e9::compute(2021, 5);
    for arm in &out.arms {
        assert!(arm.uptime.clone().mean() > 0.95, "{}", arm.name);
    }
}

#[test]
fn f1_redundancy_in_figure_one_regime() {
    let f1 = bench::exhibits::f1::compute(2021);
    assert!(f1.mean_redundancy >= 1.0 && f1.mean_redundancy <= 4.0);
    assert!(f1.covered > 0.8);
}
