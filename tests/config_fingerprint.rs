//! `fleet::snapshot::config_fingerprint` as a cache key: the serve
//! daemon memoizes completed runs under this fold (extended with the
//! chaos recipe — `serve::scenario`), so two properties carry the whole
//! cache's correctness:
//!
//! 1. **Stability** — the same config always folds to the same key, on
//!    every rebuild, or restarting the daemon would orphan its cache.
//! 2. **Sensitivity** — every field that changes what a run computes
//!    must move the key, or the cache would serve one scenario's digest
//!    for another. This suite perturbs each fingerprinted field in turn
//!    and insists the key moves every time.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use fleet::sim::{ArmConfig, ArmKind, FleetConfig, SamplingMode};
use fleet::snapshot::config_fingerprint;
use simcore::time::SimDuration;

fn base() -> FleetConfig {
    FleetConfig::paper_experiment(42)
}

/// Asserts a single-field perturbation moves the fingerprint.
fn assert_moves(label: &str, mutate: impl FnOnce(&mut FleetConfig)) {
    let reference = config_fingerprint(&base());
    let mut cfg = base();
    mutate(&mut cfg);
    assert_ne!(
        config_fingerprint(&cfg),
        reference,
        "perturbing {label} must change the fingerprint — the serve cache \
         would otherwise serve the wrong scenario"
    );
}

#[test]
fn fingerprint_is_stable_across_rebuilds() {
    let a = config_fingerprint(&base());
    for _ in 0..10 {
        assert_eq!(config_fingerprint(&base()), a, "same config must refold identically");
    }
    // And a structural clone folds the same as a fresh construction.
    let cfg = base();
    assert_eq!(config_fingerprint(&cfg.clone()), config_fingerprint(&cfg));
}

#[test]
fn every_top_level_field_moves_the_fingerprint() {
    assert_moves("seed", |c| c.seed ^= 1);
    assert_moves("horizon", |c| c.horizon = SimDuration::from_years(49));
    assert_moves("sampling", |c| *c = c.clone().with_sampling(SamplingMode::Aggregate));
    assert_moves("arm count", |c| {
        let extra = ArmConfig::paper_owned_154(10, 1);
        c.arms.push(extra);
    });
    assert_moves("arm order", |c| c.arms.reverse());
}

#[test]
fn every_arm_field_moves_the_fingerprint() {
    assert_moves("arm name", |c| c.arms[0].name = "renamed-arm");
    assert_moves("arm devices", |c| c.arms[0].devices += 1);
    assert_moves("report interval", |c| {
        c.arms[0].device_spec.report_interval += SimDuration::from_secs(1);
    });
    assert_moves("per-packet delivery", |c| {
        c.arms[0].per_packet_delivery = (c.arms[0].per_packet_delivery + 1.0) / 2.0;
    });
    assert_moves("dual-homed fraction", |c| {
        c.arms[0].dual_homed_fraction = (c.arms[0].dual_homed_fraction + 1.0) / 2.0;
    });
    assert_moves("replacement policy presence", |c| c.arms[0].replace_devices = None);
    assert_moves("replacement delay", |c| {
        c.arms[0].replace_devices =
            c.arms[0].replace_devices.map(|d| d + SimDuration::from_secs(60));
    });
}

#[test]
fn arm_kind_internals_move_the_fingerprint() {
    // The paper experiment carries one owned and one federated arm, so
    // both kind payloads are exercised against the same baseline.
    let owned = base()
        .arms
        .iter()
        .position(|a| matches!(a.kind, ArmKind::Owned { .. }))
        .expect("paper experiment has an owned arm");
    let federated = base()
        .arms
        .iter()
        .position(|a| matches!(a.kind, ArmKind::Federated { .. }))
        .expect("paper experiment has a federated arm");

    assert_moves("owned gateway count", |c| {
        if let ArmKind::Owned { gateways, .. } = &mut c.arms[owned].kind {
            *gateways += 1;
        }
    });
    assert_moves("owned repair delay", |c| {
        if let ArmKind::Owned { spec, .. } = &mut c.arms[owned].kind {
            spec.repair_delay += SimDuration::from_secs(1);
        }
    });
    assert_moves("kind discriminant", |c| {
        let (a, b) = (owned.min(federated), owned.max(federated));
        let kind_b = c.arms[b].kind.clone();
        let kind_a = std::mem::replace(&mut c.arms[a].kind, kind_b);
        c.arms[b].kind = kind_a;
    });
}

#[test]
fn serve_request_key_extends_but_never_weakens_the_fingerprint() {
    use serve::json::parse_object;
    use serve::scenario::run_spec_from;

    let spec = |text: &str| {
        run_spec_from(&parse_object(text).expect("request parses")).expect("request validates")
    };

    // The serve key is a strict extension: two requests whose configs
    // fingerprint apart must key apart...
    let a = spec("{\"seed\":1,\"years\":10}");
    let b = spec("{\"seed\":2,\"years\":10}");
    assert_ne!(
        config_fingerprint(&a.fleet_config()),
        config_fingerprint(&b.fleet_config())
    );
    assert_ne!(a.request_key(), b.request_key());

    // ...and the chaos recipe, which is invisible to the fleet config,
    // still splits the key (same fingerprint, different computation).
    let chaotic = spec("{\"seed\":1,\"years\":10,\"chaos\":\"full\"}");
    assert_eq!(
        config_fingerprint(&a.fleet_config()),
        config_fingerprint(&chaotic.fleet_config()),
        "chaos is not part of the fleet config fingerprint"
    );
    assert_ne!(
        a.request_key(),
        chaotic.request_key(),
        "the serve key must still distinguish chaos from plain"
    );
}
