//! Protocol robustness battery for the `century-serve` daemon: hostile
//! and unlucky clients get typed error frames, never a panic, never a
//! hang, and never a wedged listener.
//!
//! Each test drives the daemon over a real TCP connection with some
//! flavor of defect — malformed JSON, oversized frames, truncated
//! frames, mid-stream disconnects, expired deadlines, overload,
//! deterministic garbage-byte floods — and then proves the daemon is
//! still healthy by completing an ordinary request on a *fresh*
//! connection. A companion adversarial corpus for the pure decoder
//! lives in `tests/properties.rs` (`serve_frame_decode_is_total`).

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use serve::client::{Client, Response};
use serve::frame::encode;
use serve::{Server, ServerConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("century-serve-protocol").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(cache: &str, workers: usize, queue_depth: usize) -> Server {
    let mut cfg = ServerConfig::local(temp_dir(cache));
    cfg.workers = workers;
    cfg.queue_depth = queue_depth;
    Server::start(cfg).expect("server starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("client connects")
}

/// The liveness probe every test ends with: a fresh connection must
/// still complete a ping.
fn assert_healthy(server: &Server) {
    let mut client = connect(server);
    match client.call("{\"op\":\"ping\"}").expect("daemon must still answer") {
        (_, Response::Result(obj)) => assert_eq!(obj.str_field("op"), Some("ping")),
        (_, other) => panic!("expected ping result, got {other:?}"),
    }
}

/// Expects the next terminal frame to be an error with `code`.
fn expect_error(client: &mut Client, request: &str, code: &str) {
    match client.call(request).expect("transport holds") {
        (_, Response::Error { code: got, message }) => {
            assert_eq!(got, code, "wrong error code (message: {message})");
        }
        (_, other) => panic!("expected {code} error, got {other:?}"),
    }
}

#[test]
fn malformed_requests_get_typed_errors_and_keep_the_connection() {
    let server = start_server("malformed", 1, 4);
    let mut client = connect(&server);

    // Every flavor of bad request on ONE connection: the connection must
    // survive request-level defects (only framing defects close it).
    expect_error(&mut client, "not json at all", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"seed\":1,", "bad_request");
    expect_error(&mut client, "{\"op\":\"conquer\"}", "bad_request");
    expect_error(&mut client, "{\"seed\":1}", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"years\":0}", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"shards\":65}", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"seed\":-3}", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"nested\":{\"a\":1}}", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"seed\":1,\"seed\":2}", "bad_request");
    expect_error(&mut client, "{\"op\":\"run\",\"cache\":\"maybe\"}", "bad_request");

    // And the same connection still does real work afterwards.
    match client.call("{\"op\":\"run\",\"seed\":3,\"years\":2}").expect("transport holds") {
        (_, Response::Result(obj)) => assert_eq!(obj.str_field("served"), Some("miss")),
        (_, other) => panic!("expected run result, got {other:?}"),
    }
    assert_healthy(&server);
}

#[test]
fn oversized_frame_is_refused_before_payload_and_connection_closed() {
    let server = start_server("oversized", 1, 4);
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");

    // A header declaring 2 GiB. The daemon must answer with a typed
    // "oversized" error immediately — without buffering a single payload
    // byte (we never send any).
    raw.write_all(&(2u32 << 30).to_be_bytes()).expect("header write");
    let mut response = Vec::new();
    raw.read_to_end(&mut response).expect("daemon answers then closes");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.contains("\"code\":\"oversized\""),
        "expected oversized error frame, got: {text}"
    );
    assert_healthy(&server);
}

#[test]
fn truncated_frame_and_mid_stream_disconnect_do_not_wedge_the_daemon() {
    let server = start_server("disconnect", 1, 4);

    // Half a header, then vanish.
    {
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&[0x00, 0x00]).expect("partial header");
    }
    // A full header promising 64 bytes, deliver 10, then vanish.
    {
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&64u32.to_be_bytes()).expect("header");
        raw.write_all(b"0123456789").expect("partial payload");
    }
    // Disconnect mid-*response*: request a streamed body, read one
    // frame's worth of bytes, and hang up while the server is writing.
    {
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.write_all(&encode("{\"op\":\"run\",\"seed\":8,\"years\":2,\"stream\":true}"))
            .expect("request");
        let mut first = [0u8; 16];
        raw.read_exact(&mut first).expect("start of response");
    }

    assert_healthy(&server);
}

#[test]
fn garbage_byte_floods_never_hang_or_kill_the_listener() {
    let server = start_server("garbage", 1, 4);

    // Deterministic splitmix64 stream: reproducible hostile bytes with
    // no ambient randomness (same discipline as the simulation core).
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };

    for round in 0..16 {
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let len = 1 + (next() % 512) as usize;
        let flood: Vec<u8> = (0..len).flat_map(|_| next().to_be_bytes()).collect();
        let _ = raw.write_all(&flood);
        // The daemon either answers with an error frame and closes, or
        // just closes (if the bytes happened to open a huge frame it
        // waits for more — dropping the socket resolves that). Either
        // way this read must terminate.
        let mut sink = Vec::new();
        drop(raw.set_read_timeout(Some(Duration::from_millis(500))));
        let _ = raw.read_to_end(&mut sink);
        drop(raw);
        assert!(round < 16, "bounded");
    }

    assert_healthy(&server);
}

#[test]
fn deadline_expiry_is_a_typed_error_and_the_run_still_lands_in_cache() {
    let server = start_server("deadline", 1, 4);
    let mut client = connect(&server);

    // A slow scenario (centuries of simulated time) with a 1 ms deadline:
    // the wait gives up, typed.
    let slow = "{\"op\":\"run\",\"seed\":21,\"years\":900,\"deadline_ms\":1}";
    let started = Instant::now();
    expect_error(&mut client, slow, "deadline");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "deadline error must arrive promptly, not after the run"
    );

    // The abandoned run was NOT cancelled: it completes in the
    // background and pays for the next request as a cache hit.
    let patient = "{\"op\":\"run\",\"seed\":21,\"years\":900}";
    match client.call(patient).expect("transport holds") {
        (_, Response::Result(obj)) => {
            let served = obj.str_field("served").expect("served field");
            assert!(
                served == "hit" || served == "coalesced",
                "the deadline-abandoned run must still fill the cache (got {served:?})"
            );
        }
        (_, other) => panic!("expected result, got {other:?}"),
    }
    assert_healthy(&server);
}

#[test]
fn overload_sheds_excess_requests_with_typed_errors() {
    // One worker, queue depth 1: request A executes, request B queues,
    // request C must be refused at admission.
    let server = start_server("overload", 1, 1);
    let addr = server.addr().to_string();
    // Millennia-long scenarios keep the single worker busy for long
    // enough that the admission sequence below cannot race.
    let slow = |seed: u64| format!("{{\"op\":\"run\",\"seed\":{seed},\"years\":3000}}");

    // Fire A and B without waiting for their results.
    let mut a = Client::connect(&addr).expect("connect a");
    a.send(&slow(100)).expect("send a");
    let mut b = Client::connect(&addr).expect("connect b");
    // Give A time to be popped by the worker so B lands in the queue.
    std::thread::sleep(Duration::from_millis(250));
    b.send(&slow(101)).expect("send b");
    std::thread::sleep(Duration::from_millis(250));

    // C finds the queue full.
    let mut c = Client::connect(&addr).expect("connect c");
    let started = Instant::now();
    expect_error(&mut c, &slow(102), "overloaded");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "admission control must reject immediately, not after the backlog"
    );

    // A and B still complete correctly — shedding C lost no work.
    for client in [&mut a, &mut b] {
        loop {
            match client.read().expect("transport holds") {
                Response::Stream(_) => continue,
                Response::Result(obj) => {
                    assert!(obj.u64_field("digest").is_some());
                    break;
                }
                Response::Error { code, message } => {
                    panic!("queued request failed: {code}: {message}")
                }
            }
        }
    }
    assert_healthy(&server);
}

#[test]
fn shutdown_op_drains_gracefully_and_refuses_new_work() {
    let server = start_server("shutdown", 1, 8);
    let mut worker_client = connect(&server);
    // Queue real work, then shut down before reading its result.
    worker_client.send("{\"op\":\"run\",\"seed\":31,\"years\":200}").expect("send run");

    let mut admin = connect(&server);
    match admin.call("{\"op\":\"shutdown\"}").expect("transport holds") {
        (_, Response::Result(obj)) => assert_eq!(obj.str_field("op"), Some("shutdown")),
        (_, other) => panic!("expected shutdown ack, got {other:?}"),
    }

    // The in-flight run drains to completion: the client that submitted
    // it still gets its digest (or, at worst, a typed shutting_down if
    // the request had not been admitted yet — but we gave it a head
    // start, so it must have been).
    match worker_client.read().expect("transport holds") {
        Response::Result(obj) => {
            assert!(obj.u64_field("digest").is_some(), "drained run must return its digest");
        }
        other => panic!("expected drained result, got {other:?}"),
    }

    // New connections are refused (reset) or answered with shutting_down;
    // either way the daemon reaches full stop and the cache is intact.
    let mut server = server;
    server.wait();
    assert!(server.shutting_down());
}
