//! Golden-trace regression suite: pinned run digests.
//!
//! Every entry in `tests/golden/digests.txt` is the
//! [`fleet::sim::FleetReport::digest`] of one canonical run — the paper
//! experiment across five seeds, plus the kitchen-sink chaos plan at full
//! intensity. The digest folds the ordered diary, spans, per-arm ledgers
//! and the final metric snapshot, so *any* behavioural drift — an extra
//! diary line, a shifted random draw, a changed metric — fails this suite
//! even when the headline numbers happen to agree.
//!
//! After an **intentional** behaviour change, re-bless with
//! `scripts/bless.sh` (or `GOLDEN_BLESS=1 cargo test --test
//! golden_digests`) and review the diff before committing.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use chaos::FaultPlanBuilder;
use fleet::sim::{FleetConfig, FleetSim};

const GOLDEN_PATH: &str = "tests/golden/digests.txt";
const SEEDS: [u64; 5] = [1, 2, 3, 42, 1001];

fn current_digests() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for seed in SEEDS {
        let report = FleetSim::run(FleetConfig::paper_experiment(seed));
        out.push((format!("paper_experiment/seed={seed}"), report.digest()));
    }
    let cfg = FleetConfig::paper_experiment(42);
    let plan = FaultPlanBuilder::full(42).build(&cfg, 1.0).expect("intensity 1.0 is valid");
    let report = chaos::run_with_plan(cfg, plan.clone());
    out.push(("paper_experiment/seed=42/chaos=full@1.0".to_string(), report.digest()));
    // Sharded-execution pins (k=4): identical values to the serial pins
    // above by the bit-identity contract, recorded separately so a drift
    // confined to the sharded path cannot hide behind a healthy serial
    // run. Forced entry points: the 20-device paper fleet is below the
    // small-fleet serial fallback, and these pins exist to pin the real
    // multi-shard machinery.
    let report = fleet::shard::run_sharded_forced(FleetConfig::paper_experiment(1), 4)
        .expect("four shards is valid");
    out.push(("paper_experiment/seed=1/shards=4".to_string(), report.digest()));
    let report = chaos::run_sharded_with_plan_forced(FleetConfig::paper_experiment(42), plan, 4)
        .expect("four shards is valid");
    out.push(("paper_experiment/seed=42/chaos=full@1.0/shards=4".to_string(), report.digest()));
    out
}

fn render(digests: &[(String, u64)]) -> String {
    let mut s = String::from(
        "# Golden run digests. Regenerate with scripts/bless.sh after an\n\
         # intentional behaviour change, and review the diff.\n",
    );
    for (name, d) in digests {
        s.push_str(&format!("{name} {d:016x}\n"));
    }
    s
}

#[test]
fn run_digests_match_golden() {
    let rendered = render(&current_digests());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden digests");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH} unreadable ({e}); run scripts/bless.sh"));
    assert_eq!(
        golden, rendered,
        "run digests drifted from {GOLDEN_PATH}. If the behaviour change is \
         intentional, re-bless with scripts/bless.sh and review the diff."
    );
}

#[test]
fn digest_ignores_wall_clock_profile() {
    // Two runs of one seed differ in wall-clock nanos but must share a
    // digest: the contract that keeps golden traces platform-stable.
    let a = FleetSim::run(FleetConfig::paper_experiment(5));
    let b = FleetSim::run(FleetConfig::paper_experiment(5));
    assert_eq!(a.digest(), b.digest());
    assert!(a.profile.run_nanos > 0 && b.profile.run_nanos > 0);
}
