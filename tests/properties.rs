//! Cross-crate property-based tests (proptest) on the toolkit's invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target, gated behind `--features proptest`.

use proptest::prelude::*;

use econ::cost::CostStream;
use fleet::commissioning::{Registry, Session};
use econ::credits::Wallet;
use econ::money::Usd;
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::survival::{KaplanMeier, Observation};
use simcore::time::{SimDuration, SimTime};

proptest! {
    /// Money arithmetic is exact: sum of parts equals scaled whole.
    #[test]
    fn money_no_drift(micros in 1i64..1_000_000, k in 1i64..10_000) {
        let unit = Usd::from_micros(micros as i128);
        let mut total = Usd::ZERO;
        for _ in 0..k {
            total += unit;
        }
        prop_assert_eq!(total, unit * k);
    }

    /// NPV at zero discount equals the nominal total for any stream.
    #[test]
    fn npv_zero_rate_is_total(cents in proptest::collection::vec(0i64..1_000_000, 1..40)) {
        let mut s = CostStream::zeros(cents.len());
        for (y, &c) in cents.iter().enumerate() {
            s.add(y, Usd::from_cents(c));
        }
        prop_assert_eq!(s.npv(0.0), s.total());
    }

    /// NPV is monotone non-increasing in the discount rate for
    /// non-negative streams.
    #[test]
    fn npv_monotone_in_rate(cents in proptest::collection::vec(0i64..1_000_000, 1..30)) {
        let mut s = CostStream::zeros(cents.len());
        for (y, &c) in cents.iter().enumerate() {
            s.add(y, Usd::from_cents(c));
        }
        let lo = s.npv(0.01);
        let hi = s.npv(0.10);
        prop_assert!(hi <= lo + Usd::from_micros(cents.len() as i128));
    }

    /// Wallet conservation: burned + balance is invariant under any burn
    /// sequence.
    #[test]
    fn wallet_conservation(initial in 0u64..10_000, burns in proptest::collection::vec(0u32..200, 0..50)) {
        let mut w = Wallet::with_credits(initial);
        for (i, &bytes) in burns.iter().enumerate() {
            let _ = w.burn_packet(SimTime::from_secs(i as u64), bytes);
        }
        prop_assert_eq!(w.balance() + w.burned(), initial);
    }

    /// Event queue: any schedule order pops in time order, stable by
    /// insertion for ties.
    #[test]
    fn event_queue_time_ordered(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t.as_secs() >= lt);
                if t.as_secs() == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t.as_secs(), i));
        }
    }

    /// Kaplan-Meier: survival curve is non-increasing and within [0,1]
    /// for arbitrary censored data.
    #[test]
    fn km_monotone(
        times in proptest::collection::vec(0.0f64..100.0, 1..100),
        events in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let obs: Vec<Observation> = times
            .iter()
            .zip(events.iter())
            .map(|(&t, &e)| Observation { time: t, event: e })
            .collect();
        let km = KaplanMeier::fit(&obs);
        let mut last = 1.0;
        for p in km.points() {
            prop_assert!(p.survival >= -1e-12 && p.survival <= 1.0 + 1e-12);
            prop_assert!(p.survival <= last + 1e-12);
            last = p.survival;
        }
    }

    /// RNG stream splitting: children with distinct labels never collide
    /// on their first outputs, and splitting is pure.
    #[test]
    fn rng_split_stability(seed in any::<u64>(), a in 0u64..1_000, b in 0u64..1_000) {
        let root = Rng::seed_from(seed);
        let mut c1 = root.split("x", a);
        let mut c2 = root.split("x", a);
        prop_assert_eq!(c1.next_u64(), c2.next_u64());
        if a != b {
            let mut d = root.split("x", b);
            let mut c = root.split("x", a);
            prop_assert_ne!(c.next_u64(), d.next_u64());
        }
    }

    /// Time arithmetic: (t + d) - d == t for any values that do not
    /// overflow.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 2) {
        let time = SimTime::from_secs(t);
        let dur = SimDuration::from_secs(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!(((time + dur) - time).as_secs(), d);
    }

    /// LoRa airtime is positive, finite, and monotone in payload for any
    /// spreading factor.
    #[test]
    fn lora_airtime_monotone(payload in 1u32..200, sf_idx in 0usize..6) {
        let sf = net::lora::SpreadingFactor::ALL[sf_idx];
        let cfg = net::lora::LoraConfig::uplink(sf);
        let t1 = cfg.airtime_s(payload);
        let t2 = cfg.airtime_s(payload + 24);
        prop_assert!(t1.is_finite() && t1 > 0.0);
        prop_assert!(t2 >= t1);
    }

    /// Reliability block composition: a series system never outlives its
    /// weakest sampled member.
    #[test]
    fn series_never_outlives_members(seed in any::<u64>(), mttf1 in 1.0f64..50.0, mttf2 in 1.0f64..50.0) {
        use reliability::components::external_random;
        use reliability::Block;
        let s = Block::Series(vec![
            Block::Unit(external_random(mttf1)),
            Block::Unit(external_random(mttf2)),
        ]);
        let mut rng = Rng::seed_from(seed);
        let t = 5.0;
        // Analytic: S_series(t) <= min(S_1(t), S_2(t)).
        let s1 = (-t / mttf1).exp();
        let s2 = (-t / mttf2).exp();
        prop_assert!(s.survival(t) <= s1.min(s2) + 1e-12);
        prop_assert!(s.sample_ttf(&mut rng) >= 0.0);
    }

    /// Commissioning protocol: sessions are conserved — every attached
    /// device is, after any sequence of orderly migrations and disorderly
    /// failures, either live on some gateway or in the orphan list.
    #[test]
    fn commissioning_conserves_devices(
        devices in 1u32..60,
        keyed_mod in 1u32..5,
        ops in proptest::collection::vec(any::<bool>(), 0..8),
    ) {
        let mut r = Registry::new();
        r.add_factory(0);
        r.commission(0).unwrap();
        for d in 0..devices {
            let s = if d % keyed_mod == 0 { Session::Keyed { epoch: 0 } } else { Session::Forwarding };
            r.attach(0, d, s).unwrap();
        }
        let mut current = 0u32;
        let mut next_id = 1u32;
        let mut lost_forwarding = 0u32;
        for &orderly in &ops {
            if orderly {
                r.add_factory(next_id);
                if r.begin_migration(current, next_id).is_ok() {
                    r.complete_migration(current).unwrap();
                    current = next_id;
                    next_id += 1;
                }
            } else {
                // Disorderly death: keyed orphaned, forwarding lost from
                // the registry (they re-home out of band).
                let before = r.live_sessions() as u32;
                let orphaned = r.fail_without_handoff(current).unwrap_or(0) as u32;
                lost_forwarding += before - orphaned;
                // Stand up a fresh gateway; re-attach nothing (those
                // devices are gone from this registry's view).
                r.add_factory(next_id);
                r.commission(next_id).unwrap();
                current = next_id;
                next_id += 1;
            }
        }
        let live = r.live_sessions() as u32;
        let orphans = r.orphaned().len() as u32;
        prop_assert_eq!(live + orphans + lost_forwarding, devices);
    }

    /// Upgrade planner: installs always cover every mount at least once,
    /// and OnSupportEnd never accrues unsupported time.
    #[test]
    fn upgrade_planner_invariants(seed in any::<u64>(), mounts in 1u32..40) {
        use fleet::upgrade::{run, timeline, UpgradePolicy};
        use reliability::hazard::ExponentialHazard;
        let tl = timeline(10.0, 15.0, 30.0);
        let ttf = ExponentialHazard::with_mttf(5.0);
        let mut rng = Rng::seed_from(seed);
        let out = run(UpgradePolicy::OnSupportEnd, &ttf, &tl, mounts, 30.0, &mut rng);
        prop_assert!(out.installs >= mounts as u64);
        prop_assert!(out.unsupported_mount_years < 1e-9);
        prop_assert!(out.mean_heterogeneity >= 1.0 - 1e-9);
    }

    /// Workforce backlog conservation: served + final backlog equals total
    /// demand.
    #[test]
    fn backlog_conserves_demand(
        demand in proptest::collection::vec(0.0f64..500.0, 1..30),
        capacity in 1.0f64..300.0,
    ) {
        use fleet::workforce::{run_backlog, Workforce};
        let crew = Workforce::new(capacity, 1.0);
        let out = run_backlog(&demand, &crew);
        let total: f64 = demand.iter().sum();
        let served = out.worked.hours(); // 1 h per unit.
        let final_backlog = out.backlog.last().copied().unwrap_or(0.0);
        prop_assert!((served + final_backlog - total).abs() < 1e-6);
    }

    /// Person-hours scale linearly with task count.
    #[test]
    fn labor_linear(tasks in 0u64..100_000, mins in 1u64..120) {
        use econ::labor::recovery_effort;
        let one = recovery_effort(1, SimDuration::from_mins(mins)).hours();
        let many = recovery_effort(tasks, SimDuration::from_mins(mins)).hours();
        prop_assert!((many - one * tasks as f64).abs() < 1e-6 * (tasks as f64 + 1.0));
    }

    /// RNG child streams are independent: distinct labels or indices give
    /// streams that disagree in their first outputs, and a child never
    /// mirrors its parent.
    #[test]
    fn rng_split_streams_independent(seed in any::<u64>(), i in 0u64..500) {
        let root = Rng::seed_from(seed);
        let mut a = root.split("alpha", i);
        let mut b = root.split("beta", i);
        let mut c = root.split("alpha", i + 1);
        let mut parent = Rng::seed_from(seed);
        let av: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        let pv: Vec<u64> = (0..4).map(|_| parent.next_u64()).collect();
        prop_assert_ne!(av.clone(), bv, "label must separate streams");
        prop_assert_ne!(av.clone(), cv, "index must separate streams");
        prop_assert_ne!(av, pv, "child must not mirror the parent");
    }

    /// `next_below` stays in range and is roughly uniform: with 2000
    /// draws over at most 20 buckets, every bucket count sits within
    /// ±50% of its expectation (5+ standard deviations of slack).
    #[test]
    fn next_below_uniform(seed in any::<u64>(), n in 2u64..20) {
        let mut rng = Rng::seed_from(seed);
        let draws = 2_000u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            let v = rng.next_below(n);
            prop_assert!(v < n);
            counts[v as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "bucket {} got {} of {} draws (expected ~{})",
                bucket, c, draws, expected
            );
        }
    }

    /// Shard planner: every arm lands in exactly one shard, owner lookup
    /// agrees with the groups, groups are ascending, and empty shards
    /// only ever form a suffix.
    #[test]
    fn shard_plan_partitions_exactly(
        weights in proptest::collection::vec(0u64..10_000, 0..40),
        shards in 1usize..12,
    ) {
        use fleet::shard::ShardPlan;
        let plan = ShardPlan::balance(&weights, shards).unwrap();
        prop_assert_eq!(plan.shards(), shards);
        let mut seen = vec![0u32; weights.len()];
        for (si, group) in plan.groups().iter().enumerate() {
            for w in group.windows(2) {
                prop_assert!(w[0] < w[1], "group {} not ascending", si);
            }
            for &ai in group {
                prop_assert!(ai < weights.len());
                seen[ai] += 1;
                prop_assert_eq!(plan.owner_of(ai), Some(si));
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1), "memberships {:?}", seen);
        prop_assert_eq!(plan.owner_of(weights.len()), None);
        if let Some(first_empty) = plan.groups().iter().position(Vec::is_empty) {
            prop_assert!(
                plan.groups()[first_empty..].iter().all(Vec::is_empty),
                "empty shards must be a suffix"
            );
        }
    }

    /// Shard planner: the per-shard load multiset depends only on the
    /// weight multiset — permuting the arm list cannot change how much
    /// work each shard carries.
    #[test]
    fn shard_plan_loads_invariant_under_permutation(
        weights in proptest::collection::vec(0u64..10_000, 1..30),
        shards in 1usize..8,
        rot in 0usize..30,
    ) {
        use fleet::shard::ShardPlan;
        // A rotation is an arbitrary-feeling permutation that proptest can
        // shrink; full permutations would need a vendored shuffle.
        let mut rotated = weights.clone();
        rotated.rotate_left(rot % weights.len());
        let a = ShardPlan::balance(&weights, shards).unwrap();
        let b = ShardPlan::balance(&rotated, shards).unwrap();
        // Compare load multisets via the respective weight lists.
        let mut la: Vec<u64> = a
            .groups()
            .iter()
            .map(|g| g.iter().map(|&ai| weights[ai].max(1)).sum())
            .collect();
        let mut lb: Vec<u64> = b
            .groups()
            .iter()
            .map(|g| g.iter().map(|&ai| rotated[ai].max(1)).sum())
            .collect();
        la.sort_unstable();
        lb.sort_unstable();
        prop_assert_eq!(la, lb, "load multiset changed under permutation");
    }

    /// Shard planner: more shards than arms degrades gracefully — each
    /// arm gets its own shard and the surplus stays empty.
    #[test]
    fn shard_plan_oversharding_degrades_to_singletons(
        weights in proptest::collection::vec(0u64..10_000, 1..10),
        extra in 1usize..10,
    ) {
        use fleet::shard::ShardPlan;
        let shards = weights.len() + extra;
        let plan = ShardPlan::balance(&weights, shards).unwrap();
        let nonempty: Vec<&Vec<usize>> =
            plan.groups().iter().filter(|g| !g.is_empty()).collect();
        prop_assert_eq!(nonempty.len(), weights.len(), "one arm per shard");
        for group in nonempty {
            prop_assert_eq!(group.len(), 1);
        }
    }

    /// RNG state round-trip: `from_state(state())` reproduces the exact
    /// draw sequence — the invariant the snapshot codec leans on to
    /// resume every per-arm stream mid-run.
    #[test]
    fn rng_state_roundtrip(seed in any::<u64>(), warmup in 0usize..64, draws in 1usize..64) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..warmup {
            let _ = rng.next_u64();
        }
        let mut twin = Rng::from_state(rng.state());
        for step in 0..draws {
            prop_assert_eq!(rng.next_u64(), twin.next_u64(), "diverged at draw {}", step);
        }
    }

    /// Timing-wheel round-trip: draining a queue (any schedule/cancel
    /// mix) and re-scheduling the survivors into a fresh wheel preserves
    /// pop order exactly — the invariant behind `Engine::checkpoint`'s
    /// drain-and-reseed of the pending event set.
    #[test]
    fn event_queue_drain_reschedule_roundtrip(
        times in proptest::collection::vec(0u64..2_000, 1..150),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..150),
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(times.len());
        for (i, &t) in times.iter().enumerate() {
            ids.push(q.schedule(SimTime::from_secs(t), i));
        }
        for (id, &cancel) in ids.iter().zip(cancel_mask.iter()) {
            if cancel {
                q.cancel(*id);
            }
        }
        // Drain: the checkpoint capture. Survivors come out in pop order.
        let mut drained = Vec::new();
        while let Some((t, payload)) = q.pop() {
            drained.push((t, payload));
        }
        // Reseed a fresh wheel in drained order: the resume path.
        let mut fresh = EventQueue::new();
        for &(t, payload) in &drained {
            fresh.schedule(t, payload);
        }
        let mut replayed = Vec::new();
        while let Some(ev) = fresh.pop() {
            replayed.push(ev);
        }
        prop_assert_eq!(drained, replayed, "reseeded wheel changed pop order");
    }

    /// Histogram bucketing is monotone in the observation, and each value
    /// lands in the first bucket whose upper bound is at or above it.
    #[test]
    fn histogram_bucketing_monotone(
        widths in proptest::collection::vec(0.1f64..10.0, 1..12),
        x in -5.0f64..130.0,
        dx in 0.0f64..50.0,
    ) {
        let mut bounds = Vec::with_capacity(widths.len());
        let mut acc = 0.0f64;
        for w in &widths {
            acc += w;
            bounds.push(acc);
        }
        let b = telemetry::Buckets::explicit(bounds.clone()).unwrap();
        let i = b.bucket_index(x);
        let j = b.bucket_index(x + dx);
        prop_assert!(i <= j, "monotonicity violated: {} then {}", i, j);
        prop_assert!(j <= bounds.len(), "overflow bucket is the last slot");
        if i < bounds.len() {
            prop_assert!(bounds[i] >= x, "chosen bound must cover the value");
        }
        if i > 0 {
            prop_assert!(bounds[i - 1] < x, "an earlier bucket would have fit");
        }
    }

    /// Binomial thinning moments: over 64 independent seeds, the sample
    /// mean sits within CLT bounds of `n·p` — in both the exact per-trial
    /// regime (`n ≤ 1024`) and the normal-approximation regime above it.
    /// This is the statistical license for the aggregate weekly sampler's
    /// one-draw-per-cohort thinning (DESIGN.md §13).
    #[test]
    fn binomial_thinning_moments_within_clt_bounds(seed in any::<u64>(), p in 0.05f64..0.95) {
        use simcore::dist::Binomial;
        const SEEDS: u64 = 64;
        for n in [168u64, 10_000] { // exact regime / normal regime
            let b = Binomial::new(n, p).unwrap();
            let mut sum = 0.0;
            for s in 0..SEEDS {
                let mut rng = Rng::seed_from(seed ^ (s.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                let draw = b.sample(&mut rng);
                prop_assert!(draw <= n, "sample {} exceeds trials {}", draw, n);
                sum += draw as f64;
            }
            let mean = sum / SEEDS as f64;
            // 6 standard errors plus rounding slack: astronomically
            // unlikely to trip for a correct sampler, tight enough to
            // catch a mean or variance bug.
            let tol = 6.0 * (b.variance() / SEEDS as f64).sqrt() + 1.0;
            prop_assert!(
                (mean - b.mean()).abs() < tol,
                "n={} p={}: mean of {} draws was {} vs expected {} (tol {})",
                n, p, SEEDS, mean, b.mean(), tol
            );
        }
    }

    /// Common-random-numbers pin: every per-device stream is derived by a
    /// pure label split, so consuming (or never touching) device i's
    /// stream cannot move device j's draws. This is what lets the
    /// aggregate path kill, replace, or skip devices without perturbing
    /// any other device's randomness.
    #[test]
    fn crn_pin_device_streams_independent(
        seed in any::<u64>(),
        i in 0u64..500,
        j in 0u64..500,
        burn in 0usize..64,
    ) {
        let i = if i == j { i.wrapping_add(1) } else { i };
        let root = Rng::seed_from(seed);
        let draws_j = |root: &Rng| -> Vec<u64> {
            let mut r = root.split("replace", j);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let before = draws_j(&root);
        // "Kill" device i: burn an arbitrary amount of its stream.
        let mut ri = root.split("replace", i);
        for _ in 0..burn {
            let _ = ri.next_u64();
        }
        let after = draws_j(&root);
        prop_assert_eq!(before, after, "device {}'s stream moved device {}'s draws", i, j);
    }

    /// Cohort death-time order statistics: `sorted_uniforms` yields a
    /// non-decreasing sequence in [0,1], bit-identical for the same seed —
    /// the contract that lets the aggregate build hand device i the i-th
    /// order statistic and stay deterministic across rebuilds and shards.
    #[test]
    fn cohort_death_order_statistics_sorted_and_deterministic(
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        use simcore::dist::sorted_uniforms;
        let a = sorted_uniforms(n, &mut Rng::seed_from(seed).split("deaths", 0));
        let b = sorted_uniforms(n, &mut Rng::seed_from(seed).split("deaths", 0));
        prop_assert_eq!(a.len(), n);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&a), bits(&b), "same seed must reproduce the same order statistics");
        for (k, w) in a.windows(2).enumerate() {
            prop_assert!(w[0] <= w[1], "order statistics out of order at {}", k);
        }
        for &u in &a {
            prop_assert!((0.0..=1.0).contains(&u), "uniform {} out of range", u);
        }
    }

    /// Spatial grid ≡ brute force on random clouds: uniform scatter,
    /// tight clusters, collinear runs, empty sets, and everything in one
    /// cell — the grid's radius query must return exactly the brute-force
    /// neighbor set for any cell size and query.
    #[test]
    fn grid_radius_query_equals_brute_force(
        seed in any::<u64>(),
        shape in 0usize..4,
        n in 0usize..300,
        cell in 10.0f64..2_000.0,
        qx in -500.0f64..5_500.0,
        qy in -500.0f64..5_500.0,
        radius in 0.0f64..3_000.0,
    ) {
        use net::topology::{uniform_scatter, Point};
        use net::SpatialGrid;
        let mut rng = Rng::seed_from(seed);
        let points: Vec<Point> = match shape {
            // Uniform cloud.
            0 => uniform_scatter(n, 5_000.0, 5_000.0, &mut rng),
            // Tight clusters with wide gaps.
            1 => (0..n)
                .map(|i| {
                    let (cx, cy) = [(0.0, 0.0), (4_000.0, 200.0), (3_800.0, 4_500.0)][i % 3];
                    Point::new(cx + rng.next_f64() * 30.0, cy + rng.next_f64() * 30.0)
                })
                .collect(),
            // Collinear run (degenerate bounding box).
            2 => (0..n).map(|i| Point::new(i as f64 * 17.0, 250.0)).collect(),
            // Everything inside one cell.
            _ => (0..n)
                .map(|_| Point::new(rng.next_f64() * 5.0, rng.next_f64() * 5.0))
                .collect(),
        };
        let grid = SpatialGrid::build(&points, cell);
        let center = Point::new(qx, qy);
        let got = grid.within(center, radius);
        let want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&center) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want, "shape {} n {} cell {} r {}", shape, n, cell, radius);
    }

    /// Determinism pin: equal inputs give byte-equal, ascending-index
    /// query results — the ordering contract every grid-backed resolver's
    /// digest stability rests on.
    #[test]
    fn grid_query_order_is_ascending_and_reproducible(
        seed in any::<u64>(),
        n in 1usize..300,
        cell in 20.0f64..1_500.0,
        radius in 0.0f64..2_500.0,
    ) {
        use net::topology::uniform_scatter;
        use net::SpatialGrid;
        let points = uniform_scatter(n, 3_000.0, 3_000.0, &mut Rng::seed_from(seed));
        let center = points[n / 2];
        let a = SpatialGrid::build(&points, cell).within(center, radius);
        let b = SpatialGrid::build(&points, cell).within(center, radius);
        prop_assert_eq!(&a, &b, "same inputs must reproduce the same candidate list");
        for w in a.windows(2) {
            prop_assert!(w[0] < w[1], "candidates out of ascending order: {:?}", a);
        }
    }

    /// Serve frame decoder totality: arbitrary byte prefixes never panic,
    /// never consume bytes without producing a frame, and never claim
    /// more input than exists — the adversarial contract behind the
    /// daemon's "malformed frames cannot hang or kill the listener".
    #[test]
    fn serve_frame_decode_is_total(
        bytes in proptest::collection::vec(any::<u32>(), 0..200),
        max in 0u64..2_000_000,
    ) {
        use serve::frame::{decode, Decoded};
        // Widen u32 lanes into raw bytes so headers of every magnitude
        // (tiny, huge, pathological) appear in the corpus.
        let raw: Vec<u8> = bytes.iter().flat_map(|w| w.to_be_bytes()).collect();
        for cut in [raw.len() / 3, raw.len() / 2, raw.len()] {
            match decode(&raw[..cut], max as usize) {
                Ok(Decoded::Frame { consumed, .. }) => {
                    prop_assert!(consumed >= 4 && consumed <= cut);
                }
                Ok(Decoded::NeedMore) | Err(_) => {}
            }
        }
    }

    /// Serve frame codec round-trip: every encodable payload decodes to
    /// itself with exact consumption, and survives trailing garbage.
    #[test]
    fn serve_frame_roundtrip(
        chars in proptest::collection::vec(0u32..0x11_0000, 0..120),
        trailer in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        use serve::frame::{decode, encode, Decoded, ABSOLUTE_MAX_FRAME};
        let payload: String =
            chars.iter().filter_map(|&c| char::from_u32(c)).collect();
        let mut framed = encode(&payload);
        let framed_len = framed.len();
        framed.extend(trailer.iter().flat_map(|w| w.to_be_bytes()));
        match decode(&framed, ABSOLUTE_MAX_FRAME) {
            Ok(Decoded::Frame { payload: got, consumed }) => {
                prop_assert_eq!(got, payload);
                prop_assert_eq!(consumed, framed_len, "must stop exactly at the frame boundary");
            }
            other => prop_assert!(false, "expected roundtrip, got {:?}", other),
        }
    }

    /// Serve protocol JSON parser totality: arbitrary UTF-8 (including
    /// object-shaped prefixes) never panics and never accepts nesting.
    #[test]
    fn serve_json_parse_is_total(
        bytes in proptest::collection::vec(any::<u32>(), 0..120),
        wrap in any::<bool>(),
    ) {
        use serve::json::parse_object;
        let raw: Vec<u8> = bytes.iter().flat_map(|w| w.to_be_bytes()).collect();
        let mut text = String::from_utf8_lossy(&raw).into_owned();
        if wrap {
            // Steer half the corpus toward almost-valid objects, where
            // the interesting parser paths live.
            text = format!("{{\"k\":{text}}}");
        }
        match parse_object(&text) {
            Ok(obj) => {
                for (key, _) in obj.fields() {
                    prop_assert!(!key.is_empty() || text.contains("\"\""));
                }
            }
            Err(e) => prop_assert!(e.at <= text.len()),
        }
    }

    /// Serve JSON escape/parse round-trip: any string value survives
    /// `push_escaped` → `parse_object` byte-for-byte, so digests and
    /// diary lines cross the wire unaltered.
    #[test]
    fn serve_json_escape_roundtrip(chars in proptest::collection::vec(0u32..0x11_0000, 0..120)) {
        use serve::json::{parse_object, push_escaped};
        let value: String = chars.iter().filter_map(|&c| char::from_u32(c)).collect();
        let mut text = String::from("{\"v\":");
        push_escaped(&mut text, &value);
        text.push('}');
        let obj = parse_object(&text).unwrap();
        prop_assert_eq!(obj.str_field("v"), Some(value.as_str()));
    }
}
