//! Metamorphic properties of the chaos-injection subsystem.
//!
//! Three relations, all on a fixed seed so failures replay exactly:
//!
//! 1. **Never aborts** — a full-intensity kitchen-sink fault schedule
//!    runs the 50-year experiment to the horizon without panicking, and
//!    every scheduled fault lands in the diary.
//! 2. **Monotone degradation** — under the storm-heavy preset (faults
//!    that zero a path rather than scale it), per-arm weekly uptime is
//!    non-increasing in fault intensity, because plans nest by intensity
//!    and the simulation holds its random streams fixed (CRN).
//! 3. **Zero intensity is a no-op** — a zero-intensity plan produces a
//!    diary byte-identical to running without any plan at all.
//!
//! The same three relations also hold for *geometric* storm plans
//! ([`chaos::geo::GeoStormBuilder`]), whose faults are per-device
//! knockouts selected by a storm disc through the spatial grid — the
//! fourth test runs the combined schedule (arm-scoped + geometric) and
//! checks the same contracts.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use chaos::geo::GeoStormBuilder;
use chaos::{run_with_plan, Fault, FaultPlan, FaultPlanBuilder};
use fleet::geometry::FleetGeometry;
use fleet::sim::{FleetConfig, FleetSim};

const SEED: u64 = 0xC4A0_5EED;

#[test]
fn full_intensity_storms_never_abort_and_are_fully_diarised() {
    let cfg = FleetConfig::paper_experiment(SEED);
    let plan = FaultPlanBuilder::full(SEED).build(&cfg, 1.0).unwrap();
    let n = plan.len() as u64;
    assert!(n > 100, "a kitchen-sink half-century should be busy, got {n}");

    let report = run_with_plan(cfg, plan);

    // The run reached the horizon: every week was evaluated.
    for arm in &report.arms {
        assert_eq!(arm.weeks_total, 50 * 365 / 7, "{}", arm.name);
    }
    // Every fault was applied and recorded.
    let injected: u64 = report.arms.iter().map(|a| a.faults_injected).sum();
    assert_eq!(injected, n);
    let chaos_lines = report
        .diary
        .render()
        .lines()
        .filter(|l| l.contains("chaos:"))
        .count() as u64;
    assert_eq!(chaos_lines, n);
}

#[test]
fn weekly_uptime_is_monotone_in_storm_intensity() {
    let cfg = FleetConfig::paper_experiment(SEED);
    let builder = FaultPlanBuilder::storm_heavy(SEED);
    let intensities = [0.0, 0.25, 0.5, 0.75, 1.0];

    let runs: Vec<_> = intensities
        .iter()
        .map(|&i| {
            let plan = builder.build(&cfg, i).unwrap();
            (i, run_with_plan(cfg.clone(), plan))
        })
        .collect();

    for pair in runs.windows(2) {
        let (lo_i, lo) = &pair[0];
        let (hi_i, hi) = &pair[1];
        for (a, b) in lo.arms.iter().zip(&hi.arms) {
            assert!(
                b.weeks_up <= a.weeks_up,
                "{}: intensity {hi_i} has {} weeks up, intensity {lo_i} only {}",
                a.name,
                b.weeks_up,
                a.weeks_up
            );
            assert!(
                b.readings_delivered <= a.readings_delivered,
                "{}: deliveries must not rise with intensity",
                a.name
            );
            assert!(b.faults_injected >= a.faults_injected, "{}", a.name);
        }
    }
    // The sweep is not vacuous: full intensity really hurts.
    let calm = &runs[0].1;
    let wild = &runs[runs.len() - 1].1;
    for (c, w) in calm.arms.iter().zip(&wild.arms) {
        assert!(
            w.weeks_up < c.weeks_up,
            "{}: a 50-year storm regime must cost at least one week",
            c.name
        );
    }
}

/// A combined schedule: the storm-heavy arm-scoped plan merged with a
/// geometric storm plan at the same intensity.
fn combined_plan(cfg: &FleetConfig, intensity: f64) -> FaultPlan {
    let arm_scoped = FaultPlanBuilder::storm_heavy(SEED).build(cfg, intensity).unwrap();
    let geo = FleetGeometry::for_config(cfg);
    let geometric = GeoStormBuilder::city(SEED ^ 0x6e0)
        .build(cfg, &geo, intensity)
        .unwrap();
    let mut all: Vec<Fault> = arm_scoped.faults().to_vec();
    all.extend_from_slice(geometric.faults());
    FaultPlan::from_faults(all)
}

#[test]
fn geometric_storms_obey_the_same_metamorphic_contracts() {
    let cfg = FleetConfig::paper_experiment(SEED);

    // Never aborts + fully diarised at full intensity.
    let full = combined_plan(&cfg, 1.0);
    let n = full.len() as u64;
    assert!(n > 100, "combined half-century schedule should be busy, got {n}");
    let wild = run_with_plan(cfg.clone(), full);
    for arm in &wild.arms {
        assert_eq!(arm.weeks_total, 50 * 365 / 7, "{}", arm.name);
    }
    let injected: u64 = wild.arms.iter().map(|a| a.faults_injected).sum();
    assert_eq!(injected, n);

    // Monotone degradation: geometric knockouts zero paths too, so CRN
    // plus nested plans keeps uptime non-increasing in intensity.
    let calm = run_with_plan(cfg.clone(), combined_plan(&cfg, 0.0));
    let mid = run_with_plan(cfg.clone(), combined_plan(&cfg, 0.5));
    for ((c, m), w) in calm.arms.iter().zip(&mid.arms).zip(&wild.arms) {
        assert!(m.weeks_up <= c.weeks_up, "{}", c.name);
        assert!(w.weeks_up <= m.weeks_up, "{}", c.name);
        assert!(w.readings_delivered <= c.readings_delivered, "{}", c.name);
    }

    // Zero intensity is a no-op.
    let plain = FleetSim::run(cfg.clone());
    assert_eq!(plain.digest(), calm.digest());
}

#[test]
fn zero_intensity_plan_is_byte_identical_to_no_plan() {
    let cfg = FleetConfig::paper_experiment(SEED);
    let plan = FaultPlanBuilder::full(SEED).build(&cfg, 0.0).unwrap();
    assert!(plan.is_empty());

    let plain = FleetSim::run(cfg.clone());
    let zeroed = run_with_plan(cfg, plan);
    let empty = run_with_plan(FleetConfig::paper_experiment(SEED), FaultPlan::empty());

    assert_eq!(plain.diary.render(), zeroed.diary.render());
    assert_eq!(plain.diary.render(), empty.diary.render());
    assert_eq!(plain.events_processed, zeroed.events_processed);
    for (a, b) in plain.arms.iter().zip(&zeroed.arms) {
        assert_eq!(a.weeks_up, b.weeks_up);
        assert_eq!(a.readings_delivered, b.readings_delivered);
        assert_eq!(a.spend, b.spend);
        assert_eq!(b.faults_injected, 0);
    }
}
