//! Differential proof: grid-backed resolvers ≡ pairwise oracles, bit for
//! bit.
//!
//! The spatial-grid rewrite (DESIGN.md §14) claims more than speed: with
//! per-pair keyed shadowing streams and a provable cull radius
//! ([`RadioParams::cull_radius_m`]), skipping out-of-range pairs must
//! change *nothing* — not one draw, not one tie-break, not one byte of
//! output. This harness pins that claim across 8 seeds × 2 densities ×
//! 2 radio parameter sets for all four rewritten hot paths (coverage,
//! mesh, placement, interference neighborhoods), comparing full
//! structures and their digests against the `reference-mode` oracles.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use net::coverage::{resolve, resolve_pairwise, RadioParams};
use net::interference::{co_sf_neighborhoods, co_sf_neighborhoods_pairwise};
use net::link::ReceptionModel;
use net::lora::SpreadingFactor;
use net::mesh::{resolve_mesh, resolve_mesh_pairwise};
use net::pathloss::LogDistance;
use net::placement::{greedy_placement, greedy_placement_pairwise};
use net::topology::{uniform_scatter, Point};
use net::units::Dbm;
use net::{ieee802154, SpatialGrid};
use simcore::rng::Rng;

const SEEDS: [u64; 8] = [101, 102, 103, 104, 105, 106, 107, 108];

/// (label, devices per km² scaled into the fixed test extent).
const DENSITIES: [(&str, usize); 2] = [("sparse", 150), ("dense", 600)];

const EXTENT_M: f64 = 4_000.0;

fn radio_sets() -> Vec<(&'static str, RadioParams)> {
    vec![
        (
            "lora-915",
            RadioParams {
                tx: Dbm(14.0),
                rx_model: ReceptionModel::at_sensitivity(
                    SpreadingFactor::Sf10.sensitivity_125khz(),
                ),
                pathloss: LogDistance::urban_915(),
                usable_margin_db: 3.0,
            },
        ),
        (
            "154-2450",
            RadioParams {
                tx: Dbm(12.0),
                rx_model: ReceptionModel::at_sensitivity(ieee802154::SENSITIVITY),
                pathloss: LogDistance::urban_2450(),
                usable_margin_db: 3.0,
            },
        ),
    ]
}

fn scene(seed: u64, devices: usize, gateways: usize) -> (Vec<Point>, Vec<Point>) {
    let mut rng = Rng::seed_from(seed);
    let d = uniform_scatter(devices, EXTENT_M, EXTENT_M, &mut rng);
    let g = uniform_scatter(gateways, EXTENT_M, EXTENT_M, &mut rng);
    (d, g)
}

#[test]
fn coverage_grid_equals_pairwise_across_seeds_densities_radios() {
    for &seed in &SEEDS {
        for &(dlabel, density) in &DENSITIES {
            let n = density * 4;
            let (devices, gateways) = scene(seed, n, n / 40 + 4);
            for (rlabel, params) in radio_sets() {
                let ctx = format!("seed {seed} {dlabel} {rlabel}");
                let grid = resolve(&devices, &gateways, &params, &mut Rng::seed_from(seed));
                let oracle =
                    resolve_pairwise(&devices, &gateways, &params, &mut Rng::seed_from(seed));
                assert_eq!(grid.device_gateways, oracle.device_gateways, "{ctx}");
                assert_eq!(grid.gateway_load, oracle.gateway_load, "{ctx}");
                assert_eq!(grid.digest(), oracle.digest(), "{ctx}");
                assert!(
                    grid.covered_fraction() > 0.0,
                    "{ctx}: vacuous scene — nothing covered"
                );
            }
        }
    }
}

#[test]
fn mesh_grid_equals_pairwise_across_seeds_and_radios() {
    // Smaller populations: the oracle's dev-links pass is O(n²).
    for &seed in &SEEDS {
        for &(dlabel, base) in &DENSITIES {
            let n = base / 2 + 50;
            let (devices, gateways) = scene(seed ^ 0xa5a5, n, 4);
            for (rlabel, params) in radio_sets() {
                let ctx = format!("seed {seed} {dlabel} {rlabel}");
                let grid =
                    resolve_mesh(&devices, &gateways, &params, 4, &mut Rng::seed_from(seed));
                let oracle = resolve_mesh_pairwise(
                    &devices,
                    &gateways,
                    &params,
                    4,
                    &mut Rng::seed_from(seed),
                );
                assert_eq!(grid.hops, oracle.hops, "{ctx}");
                assert_eq!(grid.parent, oracle.parent, "{ctx}");
                assert_eq!(grid.relay_load, oracle.relay_load, "{ctx}");
                assert_eq!(grid.digest(), oracle.digest(), "{ctx}");
            }
        }
    }
}

#[test]
fn placement_grid_equals_pairwise_across_seeds() {
    for &seed in &SEEDS {
        let (devices, candidates) = scene(seed ^ 0x1111, 600, 60);
        for (rlabel, params) in radio_sets() {
            let ctx = format!("seed {seed} {rlabel}");
            let grid = greedy_placement(
                &devices,
                &candidates,
                &params,
                0.9,
                &mut Rng::seed_from(seed),
            );
            let oracle = greedy_placement_pairwise(
                &devices,
                &candidates,
                &params,
                0.9,
                &mut Rng::seed_from(seed),
            );
            assert_eq!(grid.chosen, oracle.chosen, "{ctx}");
            assert_eq!(grid.uncovered, oracle.uncovered, "{ctx}");
            assert_eq!(grid.digest(), oracle.digest(), "{ctx}");
        }
    }
}

#[test]
fn interference_neighborhoods_equal_pairwise_across_seeds() {
    for &seed in &SEEDS {
        for &(dlabel, base) in &DENSITIES {
            let (devices, _) = scene(seed ^ 0x2222, base * 2, 1);
            for radius in [120.0, 450.0] {
                assert_eq!(
                    co_sf_neighborhoods(&devices, radius),
                    co_sf_neighborhoods_pairwise(&devices, radius),
                    "seed {seed} {dlabel} radius {radius}"
                );
            }
        }
    }
}

/// The harness is only meaningful if the grid path really culls: check
/// that at 2.4 GHz street-asset parameters the cull radius is a small
/// fraction of the test extent, so most pairs are genuinely skipped.
/// (LoRa-915's whole point is range — its ~46 km cull radius exceeds the
/// 4 km test extent, so that parameter set exercises the no-cull case of
/// the differential instead.)
#[test]
fn culling_is_not_vacuous() {
    let (_, params) = radio_sets().remove(1);
    let cull = params.cull_radius_m();
    assert!(
        cull < EXTENT_M / 2.0,
        "cull radius {cull} m must be well inside the {EXTENT_M} m extent"
    );
    let (_, gateways) = scene(42, 100, 30);
    let grid = SpatialGrid::build(&gateways, cull);
    let far_corner = Point::new(0.0, 0.0);
    let candidates = grid.within(far_corner, cull).len();
    assert!(
        candidates < gateways.len(),
        "a corner query should see fewer than all {} gateways, saw {candidates}",
        gateways.len()
    );
}
