//! Golden pin on the snapshot *format*, not just run behaviour.
//!
//! `tests/golden/snapshot_format.txt` records the framing constants
//! (magic, version, frame overhead) and, for one fixed configuration —
//! paper experiment, seed 42, checkpoint at week 26 — the byte length
//! and FNV-1a digest of the sealed snapshot image. The fleet codec is
//! hand-rolled and versioned; this pin turns any accidental layout
//! change (a reordered field, a widened integer, a new block without a
//! version bump) into a loud test failure instead of a silently
//! unreadable checkpoint.
//!
//! An *intentional* format change must bump
//! [`fleet::snapshot::FLEET_SNAPSHOT_VERSION`]; re-bless with
//! `scripts/bless.sh` (or `GOLDEN_BLESS=1 cargo test --test
//! golden_snapshot`) and review the diff.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use fleet::sim::{FleetConfig, FleetSim, SamplingMode};
use fleet::snapshot::{self, ChaosProgress, FLEET_SNAPSHOT_VERSION};
use simcore::snapshot::{fnv1a, FRAME_BYTES, MAGIC};
use simcore::time::{SimDuration, SimTime};

const GOLDEN_PATH: &str = "tests/golden/snapshot_format.txt";

fn pinned_image_for(sampling: SamplingMode) -> Vec<u8> {
    let mut engine =
        FleetSim::build(FleetConfig::paper_experiment(42).with_sampling(sampling));
    engine.run_until(SimTime::ZERO + SimDuration::from_weeks(26));
    snapshot::checkpoint_bytes(&mut engine, ChaosProgress::default())
}

fn pinned_image() -> Vec<u8> {
    pinned_image_for(SamplingMode::Legacy)
}

fn render() -> String {
    let image = pinned_image();
    let aggregate = pinned_image_for(SamplingMode::Aggregate);
    let magic_hex: String = MAGIC.iter().map(|b| format!("{b:02x}")).collect();
    format!(
        "# Golden snapshot format pin. A diff here means the on-disk layout\n\
         # changed: bump FLEET_SNAPSHOT_VERSION for intentional changes, then\n\
         # re-bless with scripts/bless.sh and review.\n\
         magic {magic_hex}\n\
         version {FLEET_SNAPSHOT_VERSION}\n\
         frame_bytes {FRAME_BYTES}\n\
         image/paper_experiment/seed=42/week=26 len={} fnv1a={:016x}\n\
         image/paper_experiment/seed=42/week=26/sampling=aggregate len={} fnv1a={:016x}\n",
        image.len(),
        fnv1a(&image),
        aggregate.len(),
        fnv1a(&aggregate),
    )
}

#[test]
fn snapshot_format_matches_golden() {
    let rendered = render();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden snapshot pin");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{GOLDEN_PATH} unreadable ({e}); run scripts/bless.sh"));
    assert_eq!(
        golden, rendered,
        "snapshot format drifted from {GOLDEN_PATH}. Intentional layout \
         changes must bump FLEET_SNAPSHOT_VERSION; re-bless with \
         scripts/bless.sh and review the diff."
    );
}

#[test]
fn snapshot_bytes_are_deterministic() {
    // Two checkpoints of the same run prefix must be byte-identical —
    // the property that makes the golden pin meaningful at all.
    assert_eq!(pinned_image(), pinned_image());
}
