//! Differential harness for snapshot/restore: the crash-recovery
//! correctness gate.
//!
//! The snapshot contract (`fleet::snapshot`, DESIGN.md §12) promises
//! that run-to-week-W → checkpoint → **crash** → resume → run-to-horizon
//! is bit-identical to the uninterrupted run: same digest, same event
//! count, same diary. This suite grinds that promise against 8 seeds ×
//! 3 checkpoint weeks × {plain, full-intensity chaos} × shard counts
//! {1, 4}, mirroring `tests/shard_differential.rs`: the uninterrupted
//! serial run is the reference implementation, the checkpoint/resume
//! path is the machinery under test, and the run digest is the
//! equivalence oracle.
//!
//! The crash is real in the only sense that matters: the engine is
//! dropped after the snapshot bytes exist, and the resumed world is
//! rebuilt from nothing but the config and those bytes. A separate test
//! simulates the *mid-write* crash — a torn, truncated, or bit-flipped
//! file — which must fail closed with a typed error, never load.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use chaos::FaultPlanBuilder;
use fleet::sim::{FleetConfig, FleetSim, SamplingMode};
use fleet::snapshot::{self, ChaosProgress};
use simcore::snapshot::SnapshotError;
use simcore::time::{SimDuration, SimTime};

const SEEDS: [u64; 8] = [1, 2, 3, 7, 42, 97, 1001, 0xdead_beef];
/// Checkpoint boundaries: the first week, mid-decade, and deep into the
/// second half of the 50-year horizon.
const CHECKPOINT_WEEKS: [u64; 3] = [1, 260, 1560];
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn cfg(seed: u64) -> FleetConfig {
    FleetConfig::paper_experiment(seed)
}

fn week(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_weeks(n)
}

fn temp_path(name: String) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("century-snapshot-differential");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn plain_resume_matches_uninterrupted_across_seeds_weeks_and_k() {
    for seed in SEEDS {
        let baseline = FleetSim::run(cfg(seed));
        for w in CHECKPOINT_WEEKS {
            let mut engine = FleetSim::build(cfg(seed));
            engine.run_until(week(w));
            let bytes = snapshot::checkpoint_bytes(&mut engine, ChaosProgress::default());
            drop(engine); // The crash: nothing survives but the bytes.
            for k in SHARD_COUNTS {
                let resumed = snapshot::resume_from_bytes(&bytes, cfg(seed))
                    .expect("a freshly sealed snapshot verifies");
                let report = if k == 1 {
                    resumed.run_to_horizon()
                } else {
                    // Forced: the paper fleet is below the small-fleet
                    // serial fallback, and this suite wants the real
                    // multi-shard continuation.
                    fleet::shard::run_resumed_forced(resumed.engine, k).unwrap()
                };
                assert_eq!(
                    report.digest(),
                    baseline.digest(),
                    "seed {seed}, checkpoint week {w}, k={k}: resumed digest drifted"
                );
                assert_eq!(
                    report.events_processed, baseline.events_processed,
                    "seed {seed}, checkpoint week {w}, k={k}"
                );
                assert_eq!(
                    report.diary.len(),
                    baseline.diary.len(),
                    "seed {seed}, checkpoint week {w}, k={k}"
                );
            }
        }
    }
}

#[test]
fn chaos_resume_matches_uninterrupted_across_seeds_weeks_and_k() {
    for seed in SEEDS {
        let plan = FaultPlanBuilder::full(seed ^ 0xc4a0).build(&cfg(seed), 1.0).unwrap();
        let baseline = chaos::run_with_plan(cfg(seed), plan.clone());
        for w in CHECKPOINT_WEEKS {
            // Through the real filesystem path: atomic write, then
            // verified read — the bench `--checkpoint-every/--resume`
            // flags ride exactly this route.
            let path = temp_path(format!("chaos-{seed}-w{w}.snap"));
            let _ = chaos::checkpoint_with_plan(cfg(seed), plan.clone(), week(w), &path)
                .expect("checkpoint writes atomically");
            for k in SHARD_COUNTS {
                let report = if k == 1 {
                    chaos::resume_with_plan(&path, cfg(seed), plan.clone()).unwrap()
                } else {
                    chaos::resume_sharded_with_plan_forced(&path, cfg(seed), plan.clone(), k)
                        .unwrap()
                };
                assert_eq!(
                    report.digest(),
                    baseline.digest(),
                    "seed {seed}, checkpoint week {w}, k={k}, chaos=full@1.0: digest drifted"
                );
                assert_eq!(
                    report.events_processed, baseline.events_processed,
                    "seed {seed}, checkpoint week {w}, k={k}, chaos=full@1.0"
                );
            }
            std::fs::remove_file(&path).unwrap();
        }
    }
}

#[test]
fn aggregate_mode_resume_matches_uninterrupted_across_seeds_weeks_and_k() {
    // The snapshot promise, re-proven over the aggregate sampling path:
    // the struct-of-arrays device columns, the wallet column, and the
    // rebuilt stuck-device index must all overlay to a world whose
    // remaining aggregate draws land exactly where the uninterrupted
    // run's did. (The aggregate cohort RNG is re-derived from the config,
    // not stored — this grind is what proves that's sufficient.)
    for seed in [1_u64, 7, 42, 1001] {
        let agg = |s: u64| cfg(s).with_sampling(SamplingMode::Aggregate);
        let baseline = FleetSim::run(agg(seed));
        for w in CHECKPOINT_WEEKS {
            let mut engine = FleetSim::build(agg(seed));
            engine.run_until(week(w));
            let bytes = snapshot::checkpoint_bytes(&mut engine, ChaosProgress::default());
            drop(engine); // The crash: nothing survives but the bytes.
            for k in SHARD_COUNTS {
                let resumed = snapshot::resume_from_bytes(&bytes, agg(seed))
                    .expect("a freshly sealed aggregate snapshot verifies");
                let report = if k == 1 {
                    resumed.run_to_horizon()
                } else {
                    fleet::shard::run_resumed_forced(resumed.engine, k).unwrap()
                };
                assert_eq!(
                    report.digest(),
                    baseline.digest(),
                    "seed {seed}, checkpoint week {w}, k={k}: aggregate resume drifted"
                );
                assert_eq!(
                    report.events_processed, baseline.events_processed,
                    "seed {seed}, checkpoint week {w}, k={k} (aggregate)"
                );
            }
        }
    }
}

#[test]
fn sampling_mode_is_part_of_the_config_fingerprint() {
    // A snapshot taken under one sampling mode must refuse to resume
    // under another: the modes advance different RNG streams, so a
    // cross-mode overlay would silently continue the wrong world.
    let aggregate = cfg(42).with_sampling(SamplingMode::Aggregate);
    let mut engine = FleetSim::build(aggregate.clone());
    engine.run_until(week(52));
    let bytes = snapshot::checkpoint_bytes(&mut engine, ChaosProgress::default());
    let Err(err) = snapshot::resume_from_bytes(&bytes, cfg(42)) else {
        panic!("legacy-mode resume of an aggregate snapshot must be refused");
    };
    assert!(matches!(err, SnapshotError::ConfigMismatch { .. }), "{err}");
    snapshot::resume_from_bytes(&bytes, aggregate).expect("same-mode resume verifies");
}

#[test]
fn resume_restores_chaos_progress_not_just_state() {
    // The stored replay cursor must skip already-fired faults: resuming
    // with the full plan but zeroed progress would double-inject.
    let seed = 42;
    let plan = FaultPlanBuilder::full(seed).build(&cfg(seed), 1.0).unwrap();
    let path = temp_path("progress-guard.snap".to_string());
    let (_, injector) =
        chaos::checkpoint_with_plan(cfg(seed), plan.clone(), week(520), &path).unwrap();
    let fired = injector.progress().next;
    assert!(fired > 0, "a decade of full-intensity chaos fires faults");
    let resumed = FleetSim::resume_from(&path, cfg(seed)).unwrap();
    assert_eq!(resumed.chaos.next, fired, "stored cursor must equal fired count");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mid_write_crash_fails_closed() {
    // Simulated torn write: only a prefix of the sealed image reaches
    // disk. Every truncation length must be rejected with a typed error —
    // a torn snapshot is never silently loaded.
    let mut engine = FleetSim::build(cfg(7));
    engine.run_until(week(260));
    let bytes = snapshot::checkpoint_bytes(&mut engine, ChaosProgress::default());
    let path = temp_path("torn.snap".to_string());
    for cut in [0, 8, 9, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = match FleetSim::resume_from(&path, cfg(7)) {
            Err(e) => e,
            Ok(_) => panic!("torn snapshot ({cut} of {} bytes) must not load", bytes.len()),
        };
        assert!(
            matches!(
                err,
                SnapshotError::TooShort { .. }
                    | SnapshotError::LengthMismatch { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "truncation to {cut} bytes surfaced the wrong error: {err}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_snapshot_fails_closed() {
    // Single-bit flips at sampled offsets across the image: header,
    // payload, and trailer damage must all be caught by the checksum (or
    // an earlier framing check), never decoded.
    let mut engine = FleetSim::build(cfg(3));
    engine.run_until(week(52));
    let bytes = snapshot::checkpoint_bytes(&mut engine, ChaosProgress::default());
    let stride = (bytes.len() / 64).max(1);
    for offset in (0..bytes.len()).step_by(stride) {
        let mut flipped = bytes.clone();
        flipped[offset] ^= 0x01;
        assert!(
            snapshot::resume_from_bytes(&flipped, cfg(3)).is_err(),
            "bit flip at offset {offset} must be rejected"
        );
    }
}
