//! End-to-end integration: the whole stack, seed to report.

#![allow(clippy::unwrap_used, clippy::expect_used)] // Test-only target.

use century::scenario::{Scenario, ScenarioBuilder};
use fleet::sim::{ArmConfig, FleetConfig, FleetSim};
use simcore::time::SimDuration;
use simcore::trace::Tier;

#[test]
fn full_run_is_deterministic_across_the_stack() {
    let a = FleetSim::run(FleetConfig::paper_experiment(31337));
    let b = FleetSim::run(FleetConfig::paper_experiment(31337));
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.diary.len(), b.diary.len());
    for (x, y) in a.diary.entries().iter().zip(b.diary.entries()) {
        assert_eq!(x.at, y.at);
        assert_eq!(x.message, y.message);
    }
    for (x, y) in a.arms.iter().zip(&b.arms) {
        assert_eq!(x.readings_delivered, y.readings_delivered);
        assert_eq!(x.weeks_up, y.weeks_up);
        assert_eq!(x.spend, y.spend);
        assert_eq!(x.labor.hours(), y.labor.hours());
    }
}

#[test]
fn adding_an_arm_does_not_perturb_existing_arms() {
    // Per-entity RNG streams: arm 0's trajectory must be identical whether
    // or not arm 1 exists (common-random-number comparisons depend on it).
    let mut one = FleetConfig::paper_experiment(555);
    one.arms.truncate(1);
    let solo = FleetSim::run(one);
    let both = FleetSim::run(FleetConfig::paper_experiment(555));
    assert_eq!(
        solo.arms[0].device_failures, both.arms[0].device_failures,
        "arm-0 device failures must not depend on arm 1's existence"
    );
    assert_eq!(solo.arms[0].gateway_repairs, both.arms[0].gateway_repairs);
}

#[test]
fn horizon_scales_weeks_evaluated() {
    let mut cfg = FleetConfig::paper_experiment(9);
    cfg.horizon = SimDuration::from_years(10);
    let report = FleetSim::run(cfg);
    assert_eq!(report.arms[0].weeks_total, 10 * 365 / 7);
}

#[test]
fn scenario_builder_roundtrip() {
    let scenario = ScenarioBuilder::new("integration")
        .seed(77)
        .horizon(SimDuration::from_years(25))
        .arm(ArmConfig::paper_owned_154(6, 2))
        .build();
    let report = scenario.run();
    assert_eq!(report.arms.len(), 1);
    assert_eq!(report.arms[0].weeks_total, 25 * 365 / 7);
    assert!(report.arms[0].uptime() > 0.9);
}

#[test]
fn diary_covers_multiple_tiers_over_fifty_years() {
    let report = Scenario::paper_experiment(2).run();
    let d = &report.diary;
    assert!(d.count_tier(Tier::Device) > 0, "device events expected");
    assert!(d.count_tier(Tier::Gateway) > 0, "gateway events expected");
    assert!(d.count_tier(Tier::System) > 0, "deployment log expected");
}

#[test]
fn unmaintained_fleet_darkens_maintained_fleet_does_not() {
    let mut dark = FleetConfig::paper_experiment(400);
    for arm in &mut dark.arms {
        arm.replace_devices = None;
    }
    let dark = FleetSim::run(dark);
    let lit = FleetSim::run(FleetConfig::paper_experiment(400));
    for (d, l) in dark.arms.iter().zip(&lit.arms) {
        assert!(d.uptime() < l.uptime(), "{}: {} !< {}", d.name, d.uptime(), l.uptime());
        assert_eq!(d.device_replacements, 0);
        assert!(l.device_replacements > 0);
    }
}

#[test]
fn simulated_diary_supports_field_analysis() {
    // The full loop: run the experiment, pool the observed device
    // lifetimes across seeds, and fit a Weibull — the workflow a real
    // operator of the paper's experiment would run at year 50.
    let mut obs = Vec::new();
    for seed in 0..6 {
        let report = FleetSim::run(FleetConfig::paper_experiment(seed));
        obs.extend(report.arms[0].lifetime_observations.iter().copied());
    }
    assert!(obs.len() > 100, "pooled observations: {}", obs.len());
    let fit = reliability::fit::fit_weibull(&obs).expect("enough failures to fit");
    // The harvesting BOM's effective life is on the order of a decade-plus;
    // the fit should land in a sane band with a wear-out-ish shape.
    assert!(fit.shape > 0.7 && fit.shape < 4.0, "shape {}", fit.shape);
    assert!(fit.scale > 5.0 && fit.scale < 40.0, "scale {}", fit.scale);
    let km = simcore::survival::KaplanMeier::fit(&obs);
    assert!(km.median().is_some(), "most devices fail within 50 years");
}

#[test]
fn shorter_report_interval_multiplies_expected_readings() {
    let mut cfg = FleetConfig::paper_experiment(5);
    cfg.horizon = SimDuration::from_years(2);
    cfg.arms.truncate(1);
    let hourly = FleetSim::run(cfg.clone());
    cfg.arms[0].device_spec.report_interval = SimDuration::from_mins(30);
    let half_hourly = FleetSim::run(cfg);
    assert_eq!(
        half_hourly.arms[0].readings_expected,
        hourly.arms[0].readings_expected * 2
    );
}
