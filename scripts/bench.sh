#!/usr/bin/env bash
# Reproducible throughput bench: fixed seeds, best-of-N passes, JSON out.
#
# Writes BENCH_sim_throughput.json at the repo root with serial and
# parallel events/sec for the paper experiment, compared against the
# pinned pre-calendar-queue baseline (rev 7a8213d, same machine class,
# same methodology: best-of-N wall clock over 64 replicates).
#
# The binary exits nonzero if the serial and parallel digest XORs
# diverge — a perf regression harness must never paper over a
# correctness break.
set -euo pipefail
cd "$(dirname "$0")/.."

REPLICATES="${REPLICATES:-64}"
PASSES="${PASSES:-5}"
THREADS="${THREADS:-$(nproc)}"
OUT="${OUT:-BENCH_sim_throughput.json}"

echo "== build (release) =="
cargo build --release -p bench --bin throughput

echo "== throughput (${REPLICATES} replicates, ${THREADS} threads, best of ${PASSES}) =="
./target/release/throughput \
  --replicates "${REPLICATES}" \
  --threads "${THREADS}" \
  --passes "${PASSES}" \
  --base-seed 0 \
  --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  --baseline-rev 7a8213d \
  --baseline-serial-eps 293370 \
  --baseline-serial-wall-ms 618.410 \
  --baseline-parallel-eps 279149 \
  --baseline-parallel-wall-ms 650.0 \
  --out "${OUT}"

echo "bench: wrote ${OUT}"
