#!/usr/bin/env bash
# Reproducible throughput bench: fixed seeds, best-of-N passes, JSON out.
#
# Writes BENCH_sim_throughput.json at the repo root with serial and
# parallel events/sec for the paper experiment, compared against the
# pinned pre-calendar-queue baseline (rev 7a8213d, same machine class,
# same methodology: best-of-N wall clock over 64 replicates), plus the
# intra-run sharding sweep (serial vs --shards on one 10k/100k/1M-device
# run; see fleet::shard). Sharded speedup tracks the cores the host
# grants — each sharded row records host_parallelism so a 1-core
# container's ~1.0x is read as a hardware ceiling, not a regression
# (the row says so explicitly when host_parallelism is 1).
#
# The topology sweep is the LA-scale point: a 320k-pole Manhattan city
# with a 300 m gateway lattice, coverage resolved through the spatial
# grid (net::coverage::resolve) and cross-checked bit-for-bit against
# the O(n·m) pairwise oracle — the DESIGN.md §14 differential measured
# at full scale. Expect the oracle leg to take ~2 minutes; that is the
# point.
#
# The binary exits nonzero if the serial and parallel digest XORs
# diverge, if any serial/sharded digest pair does, or if the topology
# grid/pairwise digests disagree — a perf regression harness must never
# paper over a correctness break.
set -euo pipefail
cd "$(dirname "$0")/.."

REPLICATES="${REPLICATES:-64}"
PASSES="${PASSES:-5}"
THREADS="${THREADS:-$(nproc)}"
SHARDS="${SHARDS:-8}"
SCALE_DEVICES="${SCALE_DEVICES:-10000,100000,1000000}"
TOPOLOGY_DEVICES="${TOPOLOGY_DEVICES:-320000}"
OUT="${OUT:-BENCH_sim_throughput.json}"

echo "== build (release) =="
cargo build --release -p bench --bin throughput

echo "== throughput (${REPLICATES} replicates, ${THREADS} threads, best of ${PASSES}, shards ${SHARDS} @ ${SCALE_DEVICES} devices, topology @ ${TOPOLOGY_DEVICES} poles) =="
./target/release/throughput \
  --replicates "${REPLICATES}" \
  --threads "${THREADS}" \
  --passes "${PASSES}" \
  --shards "${SHARDS}" \
  --scale-devices "${SCALE_DEVICES}" \
  --topology-devices "${TOPOLOGY_DEVICES}" \
  --base-seed 0 \
  --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  --baseline-rev 7a8213d \
  --baseline-serial-eps 293370 \
  --baseline-serial-wall-ms 618.410 \
  --baseline-parallel-eps 279149 \
  --baseline-parallel-wall-ms 650.0 \
  --out "${OUT}"

echo "bench: wrote ${OUT}"
