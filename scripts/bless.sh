#!/usr/bin/env bash
# Re-bless the golden run digests after an INTENTIONAL behaviour change.
# Rewrites tests/golden/digests.txt with the current build's digests, then
# shows the diff so the change can be reviewed before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_BLESS=1 cargo test --release --test golden_digests -- run_digests_match_golden
git --no-pager diff -- tests/golden/digests.txt || true
echo "golden digests re-blessed; review the diff above, then commit."
