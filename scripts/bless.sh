#!/usr/bin/env bash
# Re-bless the golden pins after an INTENTIONAL behaviour or format change.
# Rewrites tests/golden/digests.txt (run digests) and
# tests/golden/snapshot_format.txt (snapshot layout pin) with the current
# build's values, then shows the diff so the change can be reviewed before
# committing. Remember: an intentional snapshot-layout change must also bump
# fleet::snapshot::FLEET_SNAPSHOT_VERSION.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_BLESS=1 cargo test --release --test golden_digests -- run_digests_match_golden
GOLDEN_BLESS=1 cargo test --release --test golden_snapshot -- snapshot_format_matches_golden
git --no-pager diff -- tests/golden/ || true
echo "golden pins re-blessed; review the diff above, then commit."
