#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline (no registry access;
# proptest/criterion resolve to the path shims under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
# --workspace: the root crate alone won't link member binaries
# (throughput, century-serve) that later smoke steps execute.
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== golden digests (regression; drift fails, bless via scripts/bless.sh) =="
# CI note: in a perf-only PR a digest change here is a CORRECTNESS failure,
# not a baseline to re-bless — the scheduler/profiling contract is that
# optimizations never reorder events or touch digested state.
cargo test -q --release --test golden_digests

echo "== golden snapshot format (layout pin; intentional changes bump FLEET_SNAPSHOT_VERSION) =="
cargo test -q --release --test golden_snapshot

echo "== example smoke pass =="
cargo run -q --release --example quickstart > /dev/null

echo "== lint gate (clippy, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== simlint v2 (determinism flow rules R001-R004 + lexical rules, DESIGN.md §8, §15) =="
# Baseline-gated: any finding NOT in target/simlint-baseline.json exits 1
# and fails verify. The shipped tree is clean, so the baseline is normally
# absent/empty; to accept a documented finding during a transition, run
#   cargo run -q --release -p simlint -- --workspace --write-baseline target/simlint-baseline.json
# and commit the justification (EXPERIMENTS.md explains the workflow).
# The JSON artifact is left in target/simlint.json for CI.
cargo run -q --release -p simlint -- --workspace --baseline target/simlint-baseline.json
cargo run -q --release -p simlint -- --workspace --baseline target/simlint-baseline.json \
  --json > target/simlint.json

echo "== bench smoke (1 replicate; also asserts serial == parallel digests) =="
./target/release/throughput --replicates 1 --threads 1 --passes 1 \
  --out target/bench_smoke.json > /dev/null

echo "== sharded smoke (one seed; binary exits 1 unless serial == sharded digest) =="
./target/release/throughput --replicates 1 --threads 1 --passes 1 \
  --shards 4 --scale-devices 2000 \
  --out target/bench_sharded_smoke.json > /dev/null

echo "== sharded 100k sweep (aggregate path; exits 1 if the k=8 digest drifts from serial or the reference oracle) =="
./target/release/throughput --replicates 1 --threads 1 --passes 1 \
  --shards 8 --scale-devices 100000 \
  --out target/bench_sharded_100k.json > /dev/null

echo "== spatial-grid differential smoke (20k-pole city; exits 1 unless grid == pairwise coverage digest) =="
./target/release/throughput --replicates 1 --threads 1 --passes 1 \
  --topology-devices 20000 \
  --out target/bench_topology_smoke.json > /dev/null

echo "== LA-scale grid smoke (320k poles, grid-only; exits 1 if resolve blows its wall-clock budget) =="
./target/release/throughput --replicates 1 --threads 1 --passes 1 \
  --topology-devices 320000 --topology-grid-only --topology-budget-ms 20000 \
  --out target/bench_topology_la.json > /dev/null

echo "== snapshot-resume smoke (checkpoint every 10y; exits 1 unless resumed digests are bit-identical) =="
rm -rf target/verify-snapshots
./target/release/throughput --checkpoint-every 520 \
  --checkpoint-dir target/verify-snapshots \
  --out target/bench_snapshot_smoke.json > /dev/null

echo "== torn-write rejection (truncated snapshot must fail closed, exit 1) =="
torn=target/verify-snapshots/torn.snap
head -c 100 target/verify-snapshots/seed0-week520.snap > "$torn"
if ./target/release/throughput --resume "$torn" > /dev/null 2>&1; then
  echo "verify: FAIL — a torn snapshot was accepted" >&2
  exit 1
fi
rm -rf target/verify-snapshots

echo "== serve smoke (daemon up; miss -> hit with equal digests; replay re-proof; graceful shutdown) =="
rm -rf target/verify-serve-cache
./target/release/century-serve --cache-dir target/verify-serve-cache \
  > target/verify-serve-ready.json &
serve_pid=$!
# The daemon prints {"type":"ready","addr":"127.0.0.1:PORT"} once the
# socket is accepting; wait for that line (bounded), then read the port.
for _ in $(seq 1 100); do
  grep -q '"type":"ready"' target/verify-serve-ready.json 2>/dev/null && break
  sleep 0.1
done
serve_addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' target/verify-serve-ready.json)
if [ -z "$serve_addr" ]; then
  echo "verify: FAIL — century-serve never became ready" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
serve_req='{"op":"run","seed":9,"years":5}'
cold=$(./target/release/century-serve --addr "$serve_addr" --request "$serve_req")
warm=$(./target/release/century-serve --addr "$serve_addr" --request "$serve_req")
echo "$cold" | grep -q '"served":"miss"' \
  || { echo "verify: FAIL — first serve request was not a miss: $cold" >&2; exit 1; }
echo "$warm" | grep -q '"served":"hit"' \
  || { echo "verify: FAIL — second serve request was not a cache hit: $warm" >&2; exit 1; }
cold_digest=$(echo "$cold" | sed -n 's/.*"digest":\([0-9]*\).*/\1/p')
warm_digest=$(echo "$warm" | sed -n 's/.*"digest":\([0-9]*\).*/\1/p')
if [ -z "$cold_digest" ] || [ "$cold_digest" != "$warm_digest" ]; then
  echo "verify: FAIL — cache hit digest drifted ($cold_digest vs $warm_digest)" >&2
  exit 1
fi
./target/release/century-serve --addr "$serve_addr" \
  --request '{"op":"replay","seed":9,"years":5}' \
  | grep -q '"verified":true' \
  || { echo "verify: FAIL — replay did not re-prove the cached digest" >&2; exit 1; }
./target/release/century-serve --addr "$serve_addr" \
  --request '{"op":"shutdown"}' > /dev/null
wait "$serve_pid" \
  || { echo "verify: FAIL — daemon did not exit cleanly after shutdown" >&2; exit 1; }
rm -rf target/verify-serve-cache target/verify-serve-ready.json

echo "verify: OK"
