#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline (no registry access;
# proptest/criterion resolve to the path shims under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q --workspace

echo "== golden digests (regression; drift fails, bless via scripts/bless.sh) =="
# CI note: in a perf-only PR a digest change here is a CORRECTNESS failure,
# not a baseline to re-bless — the scheduler/profiling contract is that
# optimizations never reorder events or touch digested state.
cargo test -q --release --test golden_digests

echo "== example smoke pass =="
cargo run -q --release --example quickstart > /dev/null

echo "== lint gate (clippy, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== bench smoke (1 replicate; also asserts serial == parallel digests) =="
./target/release/throughput --replicates 1 --threads 1 --passes 1 \
  --out target/bench_smoke.json > /dev/null

echo "verify: OK"
